"""Integration tests for the literal (filter-chain) elaboration mode."""

import numpy as np
import pytest

from repro.core import (
    ConvLayerSpec,
    FCLayerSpec,
    NetworkDesign,
    PoolLayerSpec,
    extract_weights,
    random_weights,
    tiny_design,
    tiny_model,
)
from repro.core.builder import build_network
from repro.errors import ConfigurationError


class TestLiteralMode:
    def test_invalid_mode_rejected(self, rng):
        d = tiny_design()
        with pytest.raises(ConfigurationError):
            build_network(d, random_weights(d),
                          rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32),
                          memory_system="magic")

    def test_literal_matches_reference(self, rng):
        d = tiny_design()
        m = tiny_model()
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        built = build_network(d, extract_weights(d, m), batch,
                              memory_system="literal")
        built.run()
        assert np.allclose(built.outputs(), m.forward(batch), atol=1e-4)

    def test_literal_matches_behavioral_bitwise(self, rng):
        d = tiny_design()
        w = random_weights(d, seed=4)
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        a = build_network(d, w, batch, memory_system="behavioral")
        a.run()
        b = build_network(d, w, batch, memory_system="literal")
        b.run()
        assert np.array_equal(a.outputs(), b.outputs())

    def test_literal_has_more_actors(self, rng):
        d = tiny_design()
        w = random_weights(d)
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        a = build_network(d, w, batch, memory_system="behavioral")
        b = build_network(d, w, batch, memory_system="literal")
        # One actor per tap plus assemblers: much larger graph.
        assert len(b.graph.actors) > len(a.graph.actors) + 5

    def test_literal_with_padding_inserter(self, rng):
        d = NetworkDesign(
            "pad-lit", (1, 6, 6),
            [
                ConvLayerSpec(name="c1", in_fm=1, out_fm=2, kh=3, pad=1,
                              activation="tanh"),
                PoolLayerSpec(name="p1", in_fm=2, out_fm=2),
                FCLayerSpec(name="f1", in_fm=2 * 9, out_fm=3),
            ],
        )
        w = random_weights(d, seed=2)
        batch = rng.uniform(0, 1, (2, 1, 6, 6)).astype(np.float32)
        a = build_network(d, w, batch, memory_system="behavioral")
        a.run()
        b = build_network(d, w, batch, memory_system="literal")
        b.run()
        assert np.array_equal(a.outputs(), b.outputs())

    def test_literal_timing_same_steady_interval(self, rng):
        # The chain realizes the same rates as the behavioral line buffer.
        d = tiny_design()
        w = random_weights(d)
        batch = rng.uniform(0, 1, (5, 1, 8, 8)).astype(np.float32)
        a = build_network(d, w, batch, memory_system="behavioral")
        a.run()
        b = build_network(d, w, batch, memory_system="literal")
        b.run()
        ia = np.diff(a.image_completion_cycles()).mean()
        ib = np.diff(b.image_completion_cycles()).mean()
        assert ib == pytest.approx(ia, rel=0.10)
