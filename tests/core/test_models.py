"""Unit tests for the paper's preset networks (Figures 4 and 5)."""

import numpy as np

from repro.core import (
    cifar10_design,
    cifar10_model,
    extract_weights,
    tiny_design,
    tiny_model,
    usps_design,
    usps_model,
)
from repro.core.network_design import PortAdapter


class TestUspsPreset:
    def test_figure4_layer_chain(self):
        d = usps_design()
        kinds = [p.spec.kind for p in d.placements]
        assert kinds == ["conv", "pool", "conv", "fc"]

    def test_figure4_shapes(self):
        d = usps_design()
        assert [p.out_shape for p in d.placements] == [
            (6, 12, 12), (6, 6, 6), (16, 2, 2), (10, 1, 1),
        ]

    def test_figure4_parallelization(self):
        # Paper: conv1 and pool1 fully parallel, conv2 single output port.
        d = usps_design()
        conv1, pool1, conv2, fc1 = d.specs
        assert conv1.out_ports == 6
        assert pool1.in_ports == pool1.out_ports == 6
        assert (conv2.in_ports, conv2.out_ports) == (6, 1)
        assert (fc1.in_ports, fc1.out_ports) == (1, 1)

    def test_all_connections_direct(self):
        assert all(p.adapter is PortAdapter.DIRECT for p in usps_design().placements)

    def test_model_matches_design(self):
        extract_weights(usps_design(), usps_model())  # raises on mismatch

    def test_conv2_ii_sixteen(self):
        assert usps_design().specs[2].ii == 16


class TestCifarPreset:
    def test_figure5_layer_chain(self):
        kinds = [p.spec.kind for p in cifar10_design().placements]
        assert kinds == ["conv", "pool", "conv", "pool", "fc", "fc"]

    def test_figure5_shapes(self):
        d = cifar10_design()
        assert [p.out_shape for p in d.placements] == [
            (12, 28, 28), (12, 14, 14), (36, 10, 10), (36, 5, 5),
            (64, 1, 1), (10, 1, 1),
        ]

    def test_all_single_port(self):
        # "this time we could not perform any parallelization optimization".
        for spec in cifar10_design().specs:
            assert spec.in_ports == 1 and spec.out_ports == 1

    def test_model_matches_design(self):
        extract_weights(cifar10_design(), cifar10_model())

    def test_six_layers(self):
        assert cifar10_design().n_layers == 6

    def test_conv_iis(self):
        d = cifar10_design()
        assert d.specs[0].ii == 12 and d.specs[2].ii == 36


class TestTinyPreset:
    def test_model_matches_design(self):
        extract_weights(tiny_design(), tiny_model())

    def test_custom_shape(self):
        d = tiny_design(in_shape=(1, 10, 10))
        m = tiny_model(in_shape=(1, 10, 10))
        extract_weights(d, m)

    def test_model_forward_runs(self, rng):
        m = tiny_model()
        out = m.forward(rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32))
        assert out.shape == (2, 4)
