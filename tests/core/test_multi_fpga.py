"""Unit tests for the multi-FPGA partitioning extension."""

import json

import pytest

from repro.core import (
    LinkModel,
    MultiFpgaPlan,
    cifar10_design,
    network_perf,
    plan_split,
    usps_design,
)
from repro.core.multi_fpga import load_multi_fpga_plan, segment_egress_words
from repro.errors import ConfigurationError, ResourceError
from repro.fpga import Device, XC7VX485T
from repro.fpga.dma import DmaModel
from repro.hls import ResourceVector
from repro.report import SCHEMA_VERSION


class TestLinkModel:
    def test_stream_cycles_serial_word_stream(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9, clock_hz=100e6)
        # 10 bytes/cycle of bandwidth, but a serial stream moves at most
        # one 32-bit word per cycle: 100 words need 100 cycles, not 40.
        assert link.beat_interval() == 1
        assert link.stream_cycles(100) == 100

    def test_words_per_cycle_never_exceeds_one(self):
        fast = LinkModel(bandwidth_bytes_per_s=1e12, clock_hz=100e6)
        assert fast.words_per_cycle() == 1.0

    def test_bandwidth_paces_the_beat(self):
        # 1e6 B/s at 100 MHz = 0.01 B/cycle -> 400 cycles per 4-byte word.
        slow = LinkModel(bandwidth_bytes_per_s=1e6, clock_hz=100e6)
        assert slow.beat_interval() == 400
        assert slow.stream_cycles(10) == 4000

    def test_delegates_to_dma_model(self):
        link = LinkModel(bandwidth_bytes_per_s=3e8, clock_hz=150e6,
                         word_bits=64)
        dma = link.dma
        assert isinstance(dma, DmaModel)
        assert link.beat_interval() == dma.beat_interval(64)
        assert link.stream_cycles(7) == dma.transfer_cycles(7, 64)

    def test_negative_words_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkModel().stream_cycles(-1)

    def test_round_trip(self):
        link = LinkModel(bandwidth_bytes_per_s=5e8, clock_hz=200e6,
                         word_bits=16)
        assert LinkModel.from_dict(link.to_dict()) == link


class TestPlanSplit:
    def test_single_device_plan(self):
        plan = plan_split(cifar10_design(), 1)
        assert len(plan.segments) == 1
        assert plan.interval == network_perf(cifar10_design()).interval

    def test_two_device_split_contiguous(self):
        plan = plan_split(cifar10_design(), 2)
        names = [n for s in plan.segments for n in s.layer_names]
        assert names == [s.name for s in cifar10_design().specs]

    def test_split_never_slower_than_monolithic(self):
        mono = plan_split(cifar10_design(), 1).interval
        duo = plan_split(cifar10_design(), 2).interval
        assert duo <= mono

    def test_segments_fit_device(self):
        plan = plan_split(cifar10_design(), 2)
        assert plan.fits(XC7VX485T)

    def test_too_many_devices_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_split(usps_design(), 10)

    def test_zero_devices_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_split(usps_design(), 0)

    def test_tiny_device_unfit_raises(self):
        matchbox = Device("matchbox", "toy", ResourceVector(ff=10, lut=10, bram=1, dsp=1))
        with pytest.raises(ResourceError):
            plan_split(usps_design(), 2, device=matchbox)

    def test_no_fit_escape_keeps_honest_resources(self):
        matchbox = Device("matchbox", "toy", ResourceVector(ff=10, lut=10, bram=1, dsp=1))
        plan = plan_split(usps_design(), 2, device=matchbox, fit=False)
        assert not plan.fits(matchbox)
        assert plan.fits(XC7VX485T)

    def test_slow_link_becomes_bottleneck(self):
        # A link slower than every layer paces the split pipeline.
        slow = LinkModel(bandwidth_bytes_per_s=1e6, clock_hz=100e6)
        plan = plan_split(cifar10_design(), 2, link=slow)
        cut = plan.n_devices - 2
        assert plan.interval == slow.stream_cycles(
            plan.segments[cut].egress_words
        )
        assert plan.interval > network_perf(cifar10_design()).interval
        assert plan.bottleneck == "link0"

    def test_dma_endpoints_priced_like_network_perf(self):
        design = usps_design()
        plan = plan_split(design, 2)
        assert plan.dma_in_cycles == design.input_words_per_image()
        assert plan.dma_out_cycles == design.output_words_per_image()

    def test_cut_layers_name_segment_boundaries(self):
        plan = plan_split(cifar10_design(), 2)
        assert plan.cut_layers() == (plan.segments[0].layer_names[-1],)


class TestBlockedEgress:
    def test_blocked_conv_prices_tile_grid_not_out_shape(self):
        design = usps_design().with_blocking({"conv1": 5})
        placement = design.placements[0]
        spec = placement.spec
        plan = spec.block_plan(placement.in_shape[1], placement.in_shape[2])
        k = placement.out_shape[0]
        assert segment_egress_words(placement) == plan.out_words * k
        # Overhang crosses the wire: strictly more words than the
        # trimmed output volume.
        _, oh, ow = placement.out_shape
        assert segment_egress_words(placement) > k * oh * ow

    def test_plain_layer_prices_output_volume(self):
        placement = usps_design().placements[0]
        k, oh, ow = placement.out_shape
        assert segment_egress_words(placement) == k * oh * ow


class TestPlanEnvelope:
    def test_round_trip(self):
        plan = plan_split(cifar10_design(), 2)
        clone = MultiFpgaPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.interval == plan.interval
        assert clone.bottleneck == plan.bottleneck

    def test_envelope_fields(self):
        plan = plan_split(usps_design(), 2)
        env = json.loads(plan.to_json())
        assert env["schema_version"] == SCHEMA_VERSION
        assert env["kind"] == "multi-fpga-plan"
        assert env["n_devices"] == 2

    def test_load_from_file(self, tmp_path):
        plan = plan_split(usps_design(), 2)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json() + "\n")
        loaded = load_multi_fpga_plan(str(path))
        assert loaded.to_dict() == plan.to_dict()

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiFpgaPlan("empty", [], LinkModel())
