"""Unit tests for the multi-FPGA partitioning extension."""

import pytest

from repro.core import LinkModel, cifar10_design, network_perf, plan_split, usps_design
from repro.errors import ConfigurationError, ResourceError
from repro.fpga import Device, XC7VX485T
from repro.hls import ResourceVector


class TestLinkModel:
    def test_stream_cycles(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9, clock_hz=100e6)
        # 2.5 words/cycle -> 100 words need 40 cycles.
        assert link.stream_cycles(100) == 40

    def test_negative_words_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkModel().stream_cycles(-1)


class TestPlanSplit:
    def test_single_device_plan(self):
        plan = plan_split(cifar10_design(), 1)
        assert len(plan.segments) == 1
        assert plan.interval == network_perf(cifar10_design()).interval

    def test_two_device_split_contiguous(self):
        plan = plan_split(cifar10_design(), 2)
        names = [n for s in plan.segments for n in s.layer_names]
        assert names == [s.name for s in cifar10_design().specs]

    def test_split_never_slower_than_monolithic(self):
        mono = plan_split(cifar10_design(), 1).interval
        duo = plan_split(cifar10_design(), 2).interval
        assert duo <= mono

    def test_segments_fit_device(self):
        plan = plan_split(cifar10_design(), 2)
        assert plan.fits(XC7VX485T)

    def test_too_many_devices_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_split(usps_design(), 10)

    def test_zero_devices_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_split(usps_design(), 0)

    def test_tiny_device_unfit_raises(self):
        matchbox = Device("matchbox", "toy", ResourceVector(ff=10, lut=10, bram=1, dsp=1))
        with pytest.raises(ResourceError):
            plan_split(usps_design(), 2, device=matchbox)

    def test_slow_link_becomes_bottleneck(self):
        # A link slower than every layer paces the split pipeline.
        slow = LinkModel(bandwidth_bytes_per_s=1e6, clock_hz=100e6)
        plan = plan_split(cifar10_design(), 2, link=slow)
        egress = plan.segments[0].egress_words
        assert plan.interval == slow.stream_cycles(egress)
        assert plan.interval > network_perf(cifar10_design()).interval
