"""Unit tests for network designs and port-adapter classification."""

import pytest

from repro.core import (
    ConvLayerSpec,
    FCLayerSpec,
    NetworkDesign,
    PoolLayerSpec,
    PortAdapter,
    classify_adapter,
)
from repro.errors import ConfigurationError, PortMismatchError, ShapeError


class TestClassifyAdapter:
    def test_direct(self):
        assert classify_adapter(6, 6) is PortAdapter.DIRECT

    def test_demux(self):
        assert classify_adapter(1, 6) is PortAdapter.DEMUX
        assert classify_adapter(2, 6) is PortAdapter.DEMUX

    def test_widen(self):
        assert classify_adapter(6, 1) is PortAdapter.WIDEN
        assert classify_adapter(6, 3) is PortAdapter.WIDEN

    def test_nondivisible_demux_rejected(self):
        with pytest.raises(PortMismatchError):
            classify_adapter(2, 5)

    def test_nondivisible_widen_rejected(self):
        with pytest.raises(PortMismatchError):
            classify_adapter(5, 2)


class TestNetworkDesign:
    def _usps_like(self):
        return NetworkDesign(
            "net",
            (1, 16, 16),
            [
                ConvLayerSpec(name="c1", in_fm=1, out_fm=6, kh=5, out_ports=6, activation="tanh"),
                PoolLayerSpec(name="p1", in_fm=6, out_fm=6, in_ports=6, out_ports=6),
                ConvLayerSpec(name="c2", in_fm=6, out_fm=16, kh=5, in_ports=6, out_ports=1),
                FCLayerSpec(name="f1", in_fm=64, out_fm=10),
            ],
        )

    def test_shape_chain(self):
        d = self._usps_like()
        assert [p.out_shape for p in d.placements] == [
            (6, 12, 12), (6, 6, 6), (16, 2, 2), (10, 1, 1),
        ]

    def test_adapters_resolved(self):
        d = self._usps_like()
        assert [p.adapter for p in d.placements] == [
            PortAdapter.DIRECT, PortAdapter.DIRECT, PortAdapter.DIRECT,
            PortAdapter.DIRECT,
        ]

    def test_fc_flattening_validated(self):
        with pytest.raises(ShapeError):
            NetworkDesign(
                "bad", (1, 16, 16),
                [ConvLayerSpec(name="c1", in_fm=1, out_fm=6, kh=5), FCLayerSpec(name="f1", in_fm=99, out_fm=10)],
            )

    def test_feature_layer_after_fc_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDesign(
                "bad", (4, 1, 1),
                [FCLayerSpec(name="f1", in_fm=4, out_fm=4), ConvLayerSpec(name="c1", in_fm=4, out_fm=4, kh=1)],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDesign(
                "bad", (1, 8, 8),
                [ConvLayerSpec(name="x", in_fm=1, out_fm=2, kh=3), ConvLayerSpec(name="x", in_fm=2, out_fm=4, kh=3)],
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDesign("bad", (1, 8, 8), [])

    def test_invalid_input_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDesign("bad", (0, 8, 8), [ConvLayerSpec(name="c", in_fm=1, out_fm=2, kh=3)])

    def test_stream_word_counts(self):
        d = self._usps_like()
        assert d.input_words_per_image() == 256
        assert d.output_words_per_image() == 10

    def test_macs_per_image_totals(self):
        d = self._usps_like()
        expected = 144 * 6 * 25 + 4 * 16 * 6 * 25 + 64 * 10
        assert d.macs_per_image() == expected

    def test_weight_count_totals(self):
        d = self._usps_like()
        assert d.weight_count() == (150 + 6) + (2400 + 16) + (640 + 10)

    def test_n_classes(self):
        assert self._usps_like().n_classes == 10

    def test_block_design_mentions_every_layer(self):
        text = self._usps_like().block_design()
        for name in ("c1", "p1", "c2", "f1"):
            assert f"[{name}]" in text
        assert "II=" in text

    def test_block_design_shows_adapters(self):
        d = NetworkDesign(
            "net", (1, 8, 8),
            [
                ConvLayerSpec(name="c1", in_fm=1, out_fm=4, kh=3, out_ports=4),
                ConvLayerSpec(name="c2", in_fm=4, out_fm=4, kh=3, in_ports=2),
                FCLayerSpec(name="f1", in_fm=4 * 4 * 4, out_fm=4),
            ],
        )
        assert "widen" in d.block_design()
