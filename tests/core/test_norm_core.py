"""Unit + integration tests for the Eq. 3 normalization operator core."""

import numpy as np
import pytest

from repro.core.norm_core import (
    NormalizationActor,
    normalization_depth,
    normalization_resources,
)
from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError
from repro.nn import softmax


def run_norm(logit_batches, depth=0):
    n, k = logit_batches.shape
    g = DataflowGraph("t", default_capacity=4)
    src = g.add_actor(ArraySource("src", logit_batches.ravel()))
    norm = g.add_actor(
        NormalizationActor("norm", n_classes=k, images=n, pipeline_depth=depth)
    )
    snk = g.add_actor(ListSink("snk", count=n * k))
    g.connect(src, "out", norm, "in")
    g.connect(norm, "out", snk, "in")
    g.build_simulator().run()
    return np.asarray(snk.received, dtype=np.float32).reshape(n, k), snk


class TestNormalizationActor:
    def test_matches_reference_softmax(self, rng):
        logits = rng.standard_normal((3, 10)).astype(np.float32)
        got, _ = run_norm(logits)
        assert np.allclose(got, softmax(logits), atol=1e-6)

    def test_eq3_invariants(self, rng):
        logits = (rng.standard_normal((2, 5)) * 10).astype(np.float32)
        got, _ = run_norm(logits)
        assert np.all(got >= 0) and np.all(got <= 1)
        assert np.allclose(got.sum(axis=1), 1.0, atol=1e-5)

    def test_stable_for_large_logits(self):
        logits = np.array([[500.0, 0.0, -500.0]], dtype=np.float32)
        got, _ = run_norm(logits)
        assert np.isfinite(got).all()

    def test_pipeline_depth_delays_output(self, rng):
        logits = rng.standard_normal((1, 4)).astype(np.float32)
        _, fast = run_norm(logits, depth=0)
        _, slow = run_norm(logits, depth=25)
        assert slow.timestamps[0] >= fast.timestamps[0] + 25

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            NormalizationActor("n", n_classes=0)
        with pytest.raises(ConfigurationError):
            NormalizationActor("n", n_classes=3, pipeline_depth=-1)


class TestCostModels:
    def test_depth_positive_and_grows_with_k(self):
        assert normalization_depth(2) > 0
        assert normalization_depth(1000) > normalization_depth(10)

    def test_resources_include_exp_and_div(self):
        r = normalization_resources(10)
        assert r.dsp >= 7  # the exp core's DSPs
        assert r.lut > 1000


class TestBuilderIntegration:
    def test_normalized_network_outputs_probabilities(self, rng):
        from repro.core import extract_weights, tiny_design, tiny_model
        from repro.core.builder import build_network

        d = tiny_design()
        m = tiny_model()
        batch = rng.uniform(0, 1, (3, 1, 8, 8)).astype(np.float32)
        built = build_network(d, extract_weights(d, m), batch, normalize=True)
        built.run()
        got = built.outputs()
        assert np.allclose(got.sum(axis=-1), 1.0, atol=1e-5)
        assert np.allclose(got, m.predict_proba(batch), atol=1e-4)

    def test_normalize_requires_flat_output(self, rng):
        from repro.core import ConvLayerSpec, NetworkDesign, random_weights
        from repro.core.builder import build_network

        d = NetworkDesign(
            "conv-end", (1, 6, 6),
            [ConvLayerSpec(name="c1", in_fm=1, out_fm=2, kh=3)],
        )
        with pytest.raises(ConfigurationError):
            build_network(
                d, random_weights(d),
                rng.uniform(0, 1, (1, 1, 6, 6)).astype(np.float32),
                normalize=True,
            )

    def test_normalized_classification_identical(self, rng):
        from repro.core import extract_weights, tiny_design, tiny_model
        from repro.core.builder import build_network

        d = tiny_design()
        m = tiny_model()
        batch = rng.uniform(0, 1, (4, 1, 8, 8)).astype(np.float32)
        built = build_network(d, extract_weights(d, m), batch, normalize=True)
        built.run_functional()
        assert np.array_equal(
            np.argmax(built.outputs(), axis=-1), m.predict(batch)
        )
