"""Unit tests for the analytical performance model."""

import pytest

from repro.core import (
    batch_sweep,
    cifar10_design,
    layer_perf,
    network_perf,
    usps_design,
)
from repro.errors import ConfigurationError
from repro.fpga import VC707


class TestLayerPerf:
    def test_usps_conv1_input_bound(self):
        p = layer_perf(usps_design().placements[0])
        assert p.in_beats == 256
        assert p.core_cycles == 144  # II=1, 144 coordinates
        assert p.interval == 256

    def test_usps_conv2_core_bound(self):
        p = layer_perf(usps_design().placements[2])
        assert p.core_cycles == 4 * 16
        assert p.interval == 64

    def test_cifar_conv1_dominates(self):
        p = layer_perf(cifar10_design().placements[0])
        assert p.core_cycles == 28 * 28 * 12 == 9408
        assert p.interval == 9408

    def test_fc_interval_is_input_count(self):
        p = layer_perf(cifar10_design().placements[4])
        assert p.core_cycles == 900
        assert p.interval == 900

    def test_pool_full_rate(self):
        p = layer_perf(usps_design().placements[1])
        assert p.kind == "pool"
        assert p.core_cycles == p.out_beats


class TestNetworkPerf:
    def test_usps_interval_dma_bound(self):
        perf = network_perf(usps_design())
        assert perf.interval == 256
        assert perf.bottleneck == "dma_in"

    def test_cifar_interval_conv1_bound(self):
        perf = network_perf(cifar10_design())
        assert perf.interval == 9408
        assert perf.bottleneck == "conv1"

    def test_fill_at_least_interval(self):
        for d in (usps_design(), cifar10_design()):
            perf = network_perf(d)
            assert perf.fill_latency >= perf.interval

    def test_batch_cycles_affine(self):
        perf = network_perf(usps_design())
        assert perf.batch_cycles(5) - perf.batch_cycles(4) == perf.interval

    def test_mean_cycles_decreasing(self):
        perf = network_perf(cifar10_design())
        means = [perf.mean_cycles_per_image(b) for b in (1, 2, 5, 20, 100)]
        assert means == sorted(means, reverse=True)

    def test_mean_converges_to_interval(self):
        perf = network_perf(usps_design())
        assert perf.mean_cycles_per_image(10_000) == pytest.approx(
            perf.interval, rel=0.01
        )

    def test_images_per_second(self):
        perf = network_perf(usps_design())
        assert perf.images_per_second(VC707) == pytest.approx(100e6 / 256)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            network_perf(usps_design()).batch_cycles(0)


class TestBatchSweep:
    def test_rows_shape(self):
        rows = batch_sweep(usps_design(), [1, 5, 50])
        assert [r["batch"] for r in rows] == [1, 5, 50]
        assert all(r["mean_us"] > 0 for r in rows)

    def test_us_conversion(self):
        (row,) = batch_sweep(usps_design(), [100000])
        assert row["mean_us"] == pytest.approx(2.56, rel=0.02)


class TestLoopOverheadCalibration:
    def test_zero_overhead_is_ideal_model(self):
        from repro.core.perf_model import network_perf

        assert network_perf(usps_design(), loop_overhead=0.0).interval == 256

    def test_overhead_slows_conv_bound_designs(self):
        from repro.core.perf_model import network_perf

        base = network_perf(cifar10_design()).interval
        slowed = network_perf(cifar10_design(), loop_overhead=4.0).interval
        assert slowed > base

    def test_negative_overhead_rejected(self):
        from repro.core.perf_model import layer_perf

        with pytest.raises(ConfigurationError):
            layer_perf(usps_design().placements[0], loop_overhead=-1.0)

    def test_fit_recovers_papers_tc1_measurement(self):
        # Paper: 5.8 us/image = 580 cycles at 100 MHz.
        from repro.core.perf_model import fit_loop_overhead, network_perf

        oh = fit_loop_overhead(usps_design(), 580)
        assert 2.5 < oh < 3.6
        fitted = network_perf(usps_design(), loop_overhead=oh).interval
        assert fitted == pytest.approx(580, rel=0.02)

    def test_fit_recovers_papers_tc2_measurement(self):
        # Paper: 128.1 us/image = 12810 cycles at 100 MHz.
        from repro.core.perf_model import fit_loop_overhead, network_perf

        oh = fit_loop_overhead(cifar10_design(), 12_810)
        assert 3.8 < oh < 4.9
        fitted = network_perf(cifar10_design(), loop_overhead=oh).interval
        assert fitted == pytest.approx(12_810, rel=0.02)

    def test_single_constant_explains_both_testcases(self):
        # The reconciliation claim of EXPERIMENTS.md: one ~3.7-cycle
        # per-coordinate overhead lands both designs within 20% of the
        # paper's measured intervals.
        from repro.core.perf_model import network_perf

        oh = 3.7
        tc1 = network_perf(usps_design(), loop_overhead=oh).interval
        tc2 = network_perf(cifar10_design(), loop_overhead=oh).interval
        assert tc1 == pytest.approx(580, rel=0.20)
        assert tc2 == pytest.approx(12_810, rel=0.20)

    def test_invalid_measurement_rejected(self):
        from repro.core.perf_model import fit_loop_overhead

        with pytest.raises(ConfigurationError):
            fit_loop_overhead(usps_design(), 0)

    def test_dma_setup_fit_inconsistent_across_testcases(self):
        # The rejected alternative hypothesis (docs/calibration.md): a
        # per-image DMA setup constant cannot explain both measurements.
        from repro.core.perf_model import fit_dma_setup

        s1 = fit_dma_setup(usps_design(), 580)
        s2 = fit_dma_setup(cifar10_design(), 12_810)
        assert s1 < 600
        assert s2 > 10 * s1

    def test_dma_setup_shifts_interval(self):
        from repro.core.perf_model import network_perf

        base = network_perf(usps_design()).interval
        padded = network_perf(usps_design(), dma_setup_cycles=100).interval
        assert padded == base + 100

    def test_negative_dma_setup_rejected(self):
        from repro.core.perf_model import network_perf

        with pytest.raises(ConfigurationError):
            network_perf(usps_design(), dma_setup_cycles=-1)


class TestIntervalBreakdown:
    def test_rows_cover_all_stages(self):
        from repro.core.perf_model import interval_breakdown, network_perf

        rows = interval_breakdown(network_perf(usps_design()))
        stages = [r["stage"] for r in rows]
        assert stages == ["dma_in", "conv1", "pool1", "conv2", "fc1", "dma_out"]

    def test_exactly_one_bottleneck(self):
        from repro.core.perf_model import interval_breakdown, network_perf

        for d in (usps_design(), cifar10_design()):
            rows = interval_breakdown(network_perf(d))
            assert sum(1 for r in rows if r["bottleneck"]) == 1

    def test_bottleneck_row_has_max_interval(self):
        from repro.core.perf_model import interval_breakdown, network_perf

        rows = interval_breakdown(network_perf(cifar10_design()))
        best = max(r["interval"] for r in rows)
        marked = next(r for r in rows if r["bottleneck"])
        assert marked["interval"] == best
