"""Integration: analytical performance model vs cycle-accurate simulation.

The analytical model is only trustworthy because these tests pin it to the
simulator on real (small) networks: steady-state intervals must agree
almost exactly, fill latencies within a modest tolerance.
"""

import numpy as np
import pytest

from repro.core import (
    extract_weights,
    network_perf,
    run_batch,
    tiny_design,
    tiny_model,
    usps_design,
    usps_model,
)


def measured(design, model, batch):
    w = extract_weights(design, model)
    return run_batch(design, w, batch)


class TestIntervalAgreement:
    def test_tiny_interval_exact(self, rng):
        d = tiny_design()
        rep = measured(d, tiny_model(), rng.uniform(0, 1, (6, 1, 8, 8)).astype(np.float32))
        assert rep.measured_interval == network_perf(d).interval

    def test_usps_interval_exact(self, rng):
        d = usps_design()
        rep = measured(
            d, usps_model(), rng.uniform(0, 1, (5, 1, 16, 16)).astype(np.float32)
        )
        assert rep.measured_interval == network_perf(d).interval == 256

    def test_tiny_singleport_interval_close(self, rng):
        # A compute-bound variant (conv at II=2): model within 10%.
        d = tiny_design(conv_ports=(1, 1))
        from repro.core import random_weights

        rep = run_batch(
            d, random_weights(d), rng.uniform(0, 1, (6, 1, 8, 8)).astype(np.float32)
        )
        model = network_perf(d).interval
        assert rep.measured_interval == pytest.approx(model, rel=0.10)


class TestFillAgreement:
    def test_tiny_fill_within_tolerance(self, rng):
        d = tiny_design()
        rep = measured(d, tiny_model(), rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32))
        model = network_perf(d).fill_latency
        assert rep.completion_cycles[0] == pytest.approx(model, rel=0.30)

    def test_usps_fill_within_tolerance(self, rng):
        d = usps_design()
        rep = measured(
            d, usps_model(), rng.uniform(0, 1, (2, 1, 16, 16)).astype(np.float32)
        )
        model = network_perf(d).fill_latency
        assert rep.completion_cycles[0] == pytest.approx(model, rel=0.30)


class TestCalibratedSimulation:
    def test_overhead_3_reproduces_papers_tc1_latency(self, rng):
        """Closure of the calibration story: simulating the USPS design
        with 3 cycles of per-coordinate loop overhead yields a 576-cycle
        steady interval — 5.76 us at 100 MHz against the paper's measured
        5.8 us (Table II)."""
        from repro.core import random_weights
        from repro.core.builder import build_network

        d = usps_design()
        built = build_network(
            d, random_weights(d),
            rng.uniform(0, 1, (4, 1, 16, 16)).astype(np.float32),
            loop_overhead=3,
        )
        built.run()
        import numpy as _np

        interval = float(_np.mean(_np.diff(built.image_completion_cycles())))
        assert interval == pytest.approx(580, rel=0.02)

    def test_overhead_matches_analytical_model_exactly(self, rng):
        from repro.core import random_weights
        from repro.core.builder import build_network

        d = usps_design()
        for oh in (1, 3):
            built = build_network(
                d, random_weights(d),
                rng.uniform(0, 1, (4, 1, 16, 16)).astype(np.float32),
                loop_overhead=oh,
            )
            built.run()
            import numpy as _np

            sim = float(_np.mean(_np.diff(built.image_completion_cycles())))
            assert sim == network_perf(d, loop_overhead=oh).interval

    def test_overhead_does_not_change_values(self, rng):
        from repro.core import extract_weights, usps_model
        from repro.core.builder import build_network

        d = usps_design()
        m = usps_model()
        batch = rng.uniform(0, 1, (2, 1, 16, 16)).astype(np.float32)
        built = build_network(d, extract_weights(d, m), batch, loop_overhead=5)
        built.run()
        import numpy as _np

        assert _np.allclose(built.outputs(), m.forward(batch), atol=1e-4)
