"""Unit tests for the design-semantics reference forward."""

import numpy as np
import pytest

from repro.core import (
    cifar10_design,
    cifar10_model,
    design_reference_forward,
    extract_weights,
    tiny_design,
    tiny_model,
    usps_design,
    usps_model,
)
from repro.errors import ConfigurationError, ShapeError


class TestAgainstSequential:
    """The reference must agree with the independent nn.Sequential oracle."""

    @pytest.mark.parametrize(
        "design_fn,model_fn,shape",
        [
            (tiny_design, tiny_model, (1, 8, 8)),
            (usps_design, usps_model, (1, 16, 16)),
            (cifar10_design, cifar10_model, (3, 32, 32)),
        ],
    )
    def test_final_output_matches_model(self, rng, design_fn, model_fn, shape):
        design = design_fn()
        model = model_fn(np.random.default_rng(1))
        weights = extract_weights(design, model)
        batch = rng.uniform(0, 1, (2,) + shape).astype(np.float32)
        outs = design_reference_forward(design, weights, batch)
        assert np.allclose(outs[-1], model.forward(batch), atol=1e-4)

    def test_intermediate_count(self, rng):
        design = usps_design()
        weights = extract_weights(design, usps_model())
        batch = rng.uniform(0, 1, (1, 1, 16, 16)).astype(np.float32)
        outs = design_reference_forward(design, weights, batch)
        assert len(outs) == 4
        assert outs[0].shape == (1, 6, 12, 12)
        assert outs[1].shape == (1, 6, 6, 6)
        assert outs[2].shape == (1, 16, 2, 2)
        assert outs[3].shape == (1, 10)


class TestUptoAndValidation:
    def test_upto_truncates(self, rng):
        design = tiny_design()
        from repro.core import random_weights

        weights = random_weights(design)
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        outs = design_reference_forward(design, weights, batch, upto=1)
        assert len(outs) == 2

    def test_bad_upto_rejected(self, rng):
        design = tiny_design()
        from repro.core import random_weights

        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        with pytest.raises(ConfigurationError):
            design_reference_forward(design, random_weights(design), batch, upto=5)

    def test_bad_batch_rejected(self):
        design = tiny_design()
        from repro.core import random_weights

        with pytest.raises(ShapeError):
            design_reference_forward(
                design, random_weights(design),
                np.zeros((1, 1, 9, 9), dtype=np.float32),
            )

    def test_missing_weights_rejected(self, rng):
        design = tiny_design()
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        with pytest.raises(ConfigurationError):
            design_reference_forward(design, {}, batch)

    def test_mean_pool_supported(self, rng):
        from repro.core import ConvLayerSpec, NetworkDesign, PoolLayerSpec, random_weights

        design = NetworkDesign(
            "mp", (1, 6, 6),
            [
                ConvLayerSpec(name="c", in_fm=1, out_fm=2, kh=3),
                PoolLayerSpec(name="p", in_fm=2, out_fm=2, mode="mean"),
            ],
        )
        weights = random_weights(design)
        batch = rng.uniform(0, 1, (1, 1, 6, 6)).astype(np.float32)
        outs = design_reference_forward(design, weights, batch)
        assert outs[-1].shape == (1, 2, 2, 2)
