"""Unit tests for the analytical resource model (Table I machinery)."""

import math

import pytest

from repro.core import (
    cifar10_design,
    design_resources,
    layer_resources,
    usps_design,
)
from repro.core.resource_model import BASE_DESIGN
from repro.fpga import XC7VX485T
from repro.hls import op_cost


class TestLayerEstimates:
    def test_conv_dsp_tracks_mac_lanes(self):
        # USPS conv2: 2400 MACs per coordinate at II=16 -> 150 lanes.
        placement = usps_design().placements[2]
        r = layer_resources(placement)
        lanes = math.ceil(16 * 6 * 25 / 16)
        per_lane = op_cost("mul").resources.dsp + op_cost("add").resources.dsp
        assert r.dsp == lanes * per_lane

    def test_parallelism_costs_dsp(self):
        d1 = usps_design()   # conv1 fully parallel (II=1)
        from repro.core import with_layer_ports

        d2 = with_layer_ports(d1, "conv1", 1, 1)  # single port (II=6)
        r_par = layer_resources(d1.placements[0])
        r_ser = layer_resources(d2.placements[0])
        assert r_par.dsp > r_ser.dsp

    def test_fc_dsp_is_out_fm_lanes(self):
        placement = usps_design().placements[3]  # fc 64 -> 10
        r = layer_resources(placement)
        per_lane = op_cost("mul").resources.dsp + op_cost("add").resources.dsp
        assert r.dsp == 10 * per_lane

    def test_pool_uses_no_dsp(self):
        assert layer_resources(usps_design().placements[1]).dsp == 0

    def test_deep_weights_use_bram(self):
        # CIFAR fc1 holds 900*64 + 64 words: far past the LUT threshold.
        placement = cifar10_design().placements[4]
        assert layer_resources(placement).bram >= 57

    def test_shallow_weights_use_lut(self):
        # USPS conv1 has 156 weight words: stays out of BRAM.
        assert layer_resources(usps_design().placements[0]).bram == 0


class TestDesignResources:
    def test_base_design_included_by_default(self):
        res = design_resources(usps_design())
        no_base = design_resources(usps_design(), include_base=False)
        assert res.total.bram - no_base.total.bram == BASE_DESIGN.bram

    def test_both_testcases_fit_the_virtex7(self):
        assert design_resources(usps_design()).fits(XC7VX485T)
        assert design_resources(cifar10_design()).fits(XC7VX485T)

    def test_tc2_uses_more_than_tc1_everywhere(self):
        # Table I ordering: test case 2 > test case 1 on every class.
        t1 = design_resources(usps_design()).total
        t2 = design_resources(cifar10_design()).total
        assert t2.ff > t1.ff and t2.lut > t1.lut
        assert t2.bram > t1.bram and t2.dsp > t1.dsp

    def test_utilization_fractions(self):
        util = design_resources(usps_design()).utilization(XC7VX485T)
        assert set(util) == {"ff", "lut", "bram", "dsp"}
        assert all(0 < v < 1 for v in util.values())

    def test_per_layer_names(self):
        res = design_resources(usps_design())
        assert set(res.per_layer) == {"conv1", "pool1", "conv2", "fc1"}

    def test_fixed_point_cheaper_than_float(self):
        f = design_resources(usps_design(), dtype="float32").total
        x = design_resources(usps_design(), dtype="fixed16").total
        assert x.dsp < f.dsp and x.ff < f.ff


class TestPaperShape:
    @pytest.mark.parametrize(
        "design_fn,paper",
        [
            (usps_design, {"ff": 0.4110, "lut": 0.5086, "bram": 0.0350, "dsp": 0.5504}),
            (cifar10_design, {"ff": 0.6177, "lut": 0.7124, "bram": 0.2282, "dsp": 0.7432}),
        ],
    )
    def test_utilization_tracks_table1(self, design_fn, paper):
        """FF/LUT/DSP within a third of the paper's Table I figures.

        BRAM is excluded from the tight check: the paper's BRAM includes
        buffering we cannot see from the text (EXPERIMENTS.md discusses
        the gap); we only require the same small-vs-large ordering.
        """
        util = design_resources(design_fn()).utilization(XC7VX485T)
        for key in ("ff", "lut", "dsp"):
            assert util[key] == pytest.approx(paper[key], rel=0.34), key
        assert util["bram"] < 0.30
