"""Unit tests for the batch runner."""

import numpy as np
import pytest

from repro.core import (
    random_weights,
    run_batch,
    run_trained,
    simulated_batch_sweep,
    tiny_design,
    tiny_model,
)
from repro.errors import ConfigurationError


class TestRunBatch:
    def test_report_fields(self, rng):
        d = tiny_design()
        w = random_weights(d)
        batch = rng.uniform(0, 1, (3, 1, 8, 8)).astype(np.float32)
        rep = run_batch(d, w, batch)
        assert rep.images == 3
        assert len(rep.completion_cycles) == 3
        assert rep.outputs.shape == (3, 4)
        assert rep.measured_interval > 0

    def test_single_image_interval_nan(self, rng):
        d = tiny_design()
        rep = run_batch(d, random_weights(d),
                        rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32))
        assert np.isnan(rep.measured_interval)

    def test_reference_check(self, rng):
        d = tiny_design()
        m = tiny_model()
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        rep = run_trained(d, m, batch)
        assert rep.max_abs_error < 1e-4

    def test_untimed_mode_same_values(self, rng):
        d = tiny_design()
        w = random_weights(d)
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        timed = run_batch(d, w, batch, timed=True)
        funct = run_batch(d, w, batch, timed=False)
        assert np.array_equal(timed.outputs, funct.outputs)

    def test_mean_us_per_image(self, rng):
        d = tiny_design()
        rep = run_batch(d, random_weights(d),
                        rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32))
        assert rep.mean_us_per_image() == pytest.approx(
            rep.completion_cycles[-1] / 2 / 100, rel=1e-6
        )


class TestSweep:
    def test_mean_time_decreases_with_batch(self, rng):
        d = tiny_design()
        w = random_weights(d)
        image = rng.uniform(0, 1, (1, 8, 8)).astype(np.float32)
        rows = simulated_batch_sweep(d, w, image, [1, 2, 4, 8])
        means = [r["mean_us"] for r in rows]
        assert means == sorted(means, reverse=True)

    def test_image_must_be_3d(self, rng):
        d = tiny_design()
        with pytest.raises(ConfigurationError):
            simulated_batch_sweep(
                d, random_weights(d),
                rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32), [1],
            )
