"""Unit tests for layer-scaling transformations."""

import pytest

from repro.core import (
    cifar10_design,
    divisors,
    fully_parallel_design,
    network_perf,
    port_options,
    single_port_design,
    usps_design,
    with_layer_ports,
)
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.errors import ConfigurationError


class TestDivisors:
    def test_twelve(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_one(self):
        assert divisors(1) == [1]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            divisors(0)


class TestPortOptions:
    def test_conv_cartesian_divisors(self):
        s = ConvLayerSpec(name="c", in_fm=2, out_fm=4, kh=3)
        assert port_options(s) == [
            (1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (2, 4),
        ]

    def test_pool_symmetric(self):
        s = PoolLayerSpec(name="p", in_fm=6, out_fm=6)
        assert port_options(s) == [(1, 1), (2, 2), (3, 3), (6, 6)]

    def test_fc_fixed(self):
        assert port_options(FCLayerSpec(name="f", in_fm=8, out_fm=4)) == [(1, 1)]


class TestTransformations:
    def test_single_port_everywhere(self):
        d = single_port_design(usps_design())
        assert all(s.in_ports == 1 and s.out_ports == 1 for s in d.specs)

    def test_single_port_slower_than_paper_config(self):
        paper = network_perf(usps_design()).interval
        serial = network_perf(single_port_design(usps_design())).interval
        assert serial > paper

    def test_fully_parallel_ii_one_for_convs(self):
        d = fully_parallel_design(cifar10_design())
        for s in d.specs:
            if s.kind == "conv":
                assert s.ii == 1

    def test_fully_parallel_keeps_fc_single_port(self):
        d = fully_parallel_design(cifar10_design())
        for s in d.specs:
            if s.kind == "fc":
                assert (s.in_ports, s.out_ports) == (1, 1)

    def test_with_layer_ports_replaces_one(self):
        d = with_layer_ports(cifar10_design(), "conv1", 3, 12)
        assert d.specs[0].in_ports == 3 and d.specs[0].out_ports == 12
        assert d.specs[2].in_ports == 1  # untouched

    def test_with_layer_ports_unknown_layer(self):
        with pytest.raises(ConfigurationError):
            with_layer_ports(usps_design(), "nope", 1, 1)

    def test_scaling_is_monotone_in_interval(self):
        # More conv1 parallelism never slows the network down.
        base = single_port_design(cifar10_design())
        prev = network_perf(base).interval
        for out_p in (2, 3, 4, 6, 12):
            d = with_layer_ports(base, "conv1", 1, out_p)
            cur = network_perf(d).interval
            assert cur <= prev
            prev = cur
