"""Unit tests for design/weight serialization."""

import numpy as np
import pytest

from repro.core import (
    cifar10_design,
    design_from_dict,
    design_from_json,
    design_to_dict,
    design_to_json,
    load_weights,
    random_weights,
    save_weights,
    spec_from_dict,
    spec_to_dict,
    tiny_design,
    usps_design,
)
from repro.core.layer_spec import ConvLayerSpec, FCLayerSpec, PoolLayerSpec
from repro.errors import ConfigurationError
from repro.sst.block import BlockSpec


class TestSpecRoundtrip:
    @pytest.mark.parametrize(
        "spec",
        [
            ConvLayerSpec(name="c", in_fm=3, out_fm=12, kh=5, stride=2, pad=1,
                          in_ports=3, out_ports=4, activation="tanh"),
            ConvLayerSpec(name="cb", in_fm=3, out_fm=12, kh=3, pad=1,
                          block=BlockSpec(7, 5)),
            PoolLayerSpec(name="p", in_fm=6, out_fm=6, kh=2, stride=2,
                          in_ports=2, out_ports=2, mode="mean"),
            FCLayerSpec(name="f", in_fm=64, out_fm=10, acc_lanes=16,
                        activation="relu"),
        ],
    )
    def test_roundtrip(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_from_dict({"kind": "bn", "name": "x"})


class TestDesignRoundtrip:
    @pytest.mark.parametrize("design_fn", [tiny_design, usps_design, cifar10_design])
    def test_dict_roundtrip(self, design_fn):
        d = design_fn()
        d2 = design_from_dict(design_to_dict(d))
        assert d2.name == d.name
        assert d2.input_shape == d.input_shape
        assert d2.specs == d.specs

    def test_json_roundtrip(self):
        d = usps_design()
        d2 = design_from_json(design_to_json(d))
        assert d2.specs == d.specs

    def test_json_is_valid_document(self):
        import json

        doc = json.loads(design_to_json(cifar10_design()))
        assert doc["name"] == "cifar10-tc2"
        assert len(doc["layers"]) == 6

    def test_blocked_design_roundtrip(self):
        # ConvLayerSpec.block survives JSON: BlockSpec is stored as a
        # [th, tw] pair and reconstructed on load.
        from repro.core import vgg16_blocked_design

        d = vgg16_blocked_design()
        d2 = design_from_json(design_to_json(d))
        assert d2.specs == d.specs
        blocks = [s.block for s in d2.specs if isinstance(s, ConvLayerSpec)]
        assert all(isinstance(b, BlockSpec) for b in blocks)

    def test_blocked_spec_accepts_int_shorthand(self):
        doc = spec_to_dict(
            ConvLayerSpec(name="c", in_fm=1, out_fm=2, kh=3, pad=1)
        )
        doc["block"] = 4
        assert spec_from_dict(doc).block == BlockSpec(4, 4)

    def test_bad_block_shape_rejected(self):
        doc = spec_to_dict(
            ConvLayerSpec(name="c", in_fm=1, out_fm=2, kh=3, pad=1)
        )
        doc["block"] = [4, 4, 4]
        with pytest.raises(ConfigurationError):
            spec_from_dict(doc)

    def test_missing_key_rejected(self):
        with pytest.raises(ConfigurationError):
            design_from_dict({"name": "x"})

    def test_roundtrip_revalidates(self):
        # Tampering with the serialized form must be caught on reload.
        doc = design_to_dict(usps_design())
        doc["layers"][0]["out_ports"] = 5  # does not divide out_fm=6
        with pytest.raises(ConfigurationError):
            design_from_dict(doc)


class TestWeightsRoundtrip:
    def test_npz_roundtrip(self, tmp_path):
        design = tiny_design()
        w = random_weights(design, seed=9)
        path = str(tmp_path / "weights.npz")
        save_weights(path, w)
        loaded = load_weights(path)
        assert set(loaded) == set(w)
        for layer in w:
            for pname in w[layer]:
                assert np.array_equal(loaded[layer][pname], w[layer][pname])

    def test_loaded_weights_build_and_match(self, tmp_path, rng):
        from repro.core import build_network

        design = tiny_design()
        w = random_weights(design, seed=9)
        path = str(tmp_path / "weights.npz")
        save_weights(path, w)
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        a = build_network(design, w, batch)
        a.run_functional()
        b = build_network(design, load_weights(path), batch)
        b.run_functional()
        assert np.array_equal(a.outputs(), b.outputs())


class TestSerializeProperties:
    """Property: any valid design round-trips through JSON unchanged."""

    def test_random_designs_roundtrip(self):
        from hypothesis import HealthCheck, given, settings

        from tests.strategies import small_designs

        @settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(design=small_designs())
        def check(design):
            restored = design_from_json(design_to_json(design))
            assert restored.specs == design.specs
            assert restored.input_shape == design.input_shape

        check()

    def test_random_designs_dicts_are_json_safe(self):
        import json

        from hypothesis import HealthCheck, given, settings

        from repro.core import design_to_dict
        from tests.strategies import small_designs

        @settings(max_examples=25, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(design=small_designs())
        def check(design):
            json.dumps(design_to_dict(design))  # must not raise

        check()
