"""Sharded co-simulation: the multi-device equivalence suite.

Covers the acceptance contract of the shard subsystem:

- output digests identical across 1/2/4-device co-simulated placements
  for every zoo design (including the blocked full-size AlexNet), on
  both the event and compiled engines;
- measured shard interval equal to ``MultiFpgaPlan.interval`` on the
  compiled engine, ``max(single-device measured, link stages)`` on the
  interpreted engines, and per-core Eq. 4 II at 0.00% everywhere;
- certified depth plans classify the link wires (``link-pace`` method)
  and a certified shard still produces the same digests;
- a link-throttle fault campaign whose degraded interval tracks the
  analytical replay in ``repro.faults.analytical``.
"""

import json

import numpy as np
import pytest

from repro.analysis.depths import METHOD_LINK, apply_depth_plan, infer_depth_plan
from repro.core import (
    cifar10_design,
    random_weights,
    run_shard,
    tiny_design,
    usps_design,
)
from repro.core.builder import build_network
from repro.core.multi_fpga import (
    LinkModel,
    MultiFpgaPlan,
    Segment,
    plan_split,
    segment_egress_words,
)
from repro.core.perf_model import layer_perf
from repro.core.resource_model import BASE_DESIGN, layer_resources
from repro.core.zoo import alexnet_blocked_design
from repro.errors import ConfigurationError
from repro.faults.harness import output_digest
from repro.profiling import profile_design
from repro.report import SCHEMA_VERSION

SMALL_ZOO = {
    # tiny has only three layers, so its deepest placement is 3-way.
    "tiny": (tiny_design, (1, 2, 3)),
    "usps": (usps_design, (1, 2, 4)),
    "cifar10": (cifar10_design, (1, 2, 4)),
}


def forced_two_way_plan(design, cut_layer, link=None):
    """A hand-built 2-device plan cut exactly after ``cut_layer``."""
    placements = design.placements
    names = [p.spec.name for p in placements]
    cut = names.index(cut_layer) + 1
    link = link or LinkModel()
    segments = []
    for d, (lo, hi) in enumerate([(0, cut), (cut, len(names))]):
        res = BASE_DESIGN
        for p in placements[lo:hi]:
            res = res + layer_resources(p)
        segments.append(
            Segment(
                device_index=d,
                layer_names=tuple(names[lo:hi]),
                resources=res,
                interval=max(layer_perf(p).interval for p in placements[lo:hi]),
                egress_words=segment_egress_words(placements[hi - 1]),
            )
        )
    return MultiFpgaPlan(
        design.name,
        segments,
        link,
        dma_in_cycles=design.input_words_per_image(),
        dma_out_cycles=design.output_words_per_image(),
    )


def seeded_build(design, images=3, seed=0, multi_plan=None):
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (images,) + design.input_shape).astype(
        np.float32
    )
    return build_network(design, weights, batch, multi_plan=multi_plan)


class TestZooPlacements:
    @pytest.mark.parametrize("name", sorted(SMALL_ZOO))
    def test_digests_and_intervals_verify(self, name):
        factory, devices = SMALL_ZOO[name]
        report = run_shard(factory(), devices=devices, images=3, seed=0)
        assert report.ok, report.summary()
        for run in report.runs:
            for e in run.engines:
                assert e.digest_match
                assert not e.fell_back
                assert e.core_ii_rel_err == 0.0
                assert e.interval_error_pct == 0.0
                if e.engine == "compiled":
                    # Eq. 4 with the link stages racing in: 0.00% error.
                    assert e.measured_interval == run.plan.interval

    def test_multi_device_runs_are_one_simulation(self):
        # The sharded build is a single graph: link actors and wire
        # channels appear alongside both segments' layer actors.
        design = usps_design()
        plan = plan_split(design, 2)
        built = seeded_build(design, multi_plan=plan)
        assert "link0.tx" in built.graph.actors
        assert "link0.rx" in built.graph.actors
        assert "link0.wire" in built.graph.channels
        layers = {n.split(".", 1)[0] for n in built.graph.actors}
        for segment in plan.segments:
            assert set(segment.layer_names) <= layers

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            run_shard(tiny_design(), devices=(1,), engines=("quantum",))

    def test_zero_images_rejected(self):
        with pytest.raises(ConfigurationError):
            run_shard(tiny_design(), devices=(1,), images=0)


class TestBlockedFullSizeAlexNet:
    def test_compiled_placements_verify(self):
        # The full-size promoted design: blocked convs, real 227x227
        # images. Weight storage overflows a single Virtex-7 (fit=False
        # keeps honest resource totals), but the co-simulation is exact.
        report = run_shard(
            alexnet_blocked_design(),
            devices=(1, 2, 4),
            images=2,
            seed=0,
            fit=False,
            engines=("compiled",),
        )
        assert report.ok, report.summary()
        for run in report.runs:
            (e,) = run.engines
            assert e.digest_match
            assert e.measured_interval == run.plan.interval
            assert e.core_ii_rel_err == 0.0


class TestForcedBlockedCut:
    """Cut directly after a blocked conv: the merge stages relocate to
    the downstream device and the full tile grid (overhang included)
    crosses the wire."""

    def blocked_design(self):
        # Tile 5 does not divide the 12x12 output: boundary tiles carry
        # overhang, which crosses the wire and is dropped by the
        # relocated merge on the downstream device.
        return usps_design().with_blocking({"conv1": 5})

    def test_egress_prices_the_tile_grid(self):
        design = self.blocked_design()
        plan = forced_two_way_plan(design, "conv1")
        placement = design.placements[0]
        block = placement.spec.block_plan(
            placement.in_shape[1], placement.in_shape[2]
        )
        k, oh, ow = placement.out_shape
        assert plan.segments[0].egress_words == block.out_words * k
        assert plan.segments[0].egress_words > k * oh * ow

    @pytest.mark.parametrize("scheduler", ["event", "compiled"])
    def test_digest_equals_unsharded(self, scheduler):
        design = self.blocked_design()
        base = seeded_build(design)
        base.run(scheduler=scheduler)
        reference = output_digest(base.outputs())

        plan = forced_two_way_plan(design, "conv1")
        sharded = seeded_build(design, multi_plan=plan)
        res = sharded.run(scheduler=scheduler)
        assert res.finished
        assert output_digest(sharded.outputs()) == reference
        # The deferred merges run on device 1 under their layer names.
        assert "conv1.merge0" in sharded.graph.actors
        assert "link0.tx" in sharded.graph.actors

    def test_compiled_interval_matches_plan(self):
        design = self.blocked_design()
        plan = forced_two_way_plan(design, "conv1")
        sharded = seeded_build(design, images=3, multi_plan=plan)
        sharded.run(scheduler="compiled")
        cc = sharded.image_completion_cycles()
        deltas = {b - a for a, b in zip(cc, cc[1:])}
        assert deltas == {plan.interval}


class TestLinkDepthCertificates:
    """`repro shrink` treatment for the new wires: the link-pace method
    proves minimal depths from the transmitter's beat interval."""

    def test_wire_certified_depth_two_at_beat_one(self):
        design = usps_design()
        built = seeded_build(design, multi_plan=plan_split(design, 2))
        plan = infer_depth_plan(built.graph, design_name=design.name)
        cert = plan.certificates["link0.wire"]
        assert cert.method == METHOD_LINK
        assert cert.proven and not cert.tight
        assert cert.depth == 2

    def test_wire_certified_depth_one_on_slow_link(self):
        design = usps_design()
        slow = LinkModel(bandwidth_bytes_per_s=1e6, clock_hz=100e6)
        mp = forced_two_way_plan(design, design.specs[0].name, link=slow)
        built = seeded_build(design, images=1, multi_plan=mp)
        plan = infer_depth_plan(built.graph, design_name=design.name)
        cert = plan.certificates["link0.wire"]
        assert cert.method == METHOD_LINK
        assert cert.depth == 1

    def test_certified_shard_preserves_digest(self):
        design = usps_design()
        mp = plan_split(design, 2)
        reference = seeded_build(design, multi_plan=mp)
        reference.run()
        expected = output_digest(reference.outputs())

        certified = seeded_build(design, multi_plan=mp)
        plan = infer_depth_plan(certified.graph, design_name=design.name)
        apply_depth_plan(certified.graph, plan)
        assert certified.graph.channels["link0.wire"].capacity == 2
        res = certified.run()
        assert res.finished
        assert output_digest(certified.outputs()) == expected


class TestThrottleCampaign:
    def test_throttled_links_track_the_analytical_replay(self):
        report = run_shard(
            usps_design(),
            devices=(2, 4),
            images=4,
            seed=0,
            throttles=((1, 3), (7, 5)),
        )
        assert report.ok, report.summary()
        assert len(report.throttles) == 4
        for t in report.throttles:
            # Timing-only faults never change values.
            assert t.digest_match
            # The seeded-phase commit replay prices the degraded wire;
            # residual error is phase drift across a finite batch.
            assert t.error_pct <= 0.5, t.to_dict()

    def test_period_one_prediction_is_exact(self):
        # period=1 has a single phase, making the analytic replay
        # seed-exact (the serving chaos preset's regime).
        report = run_shard(
            usps_design(), devices=(4,), images=4, seed=3,
            throttles=((1, 3),),
        )
        for t in report.throttles:
            assert t.error_pct == 0.0, t.to_dict()


class TestShardedProfile:
    def test_profile_design_accepts_multi_plan(self):
        design = usps_design()
        plan = plan_split(design, 4)
        assert plan.bottleneck == "link0"
        report = profile_design(design, images=3, multi_plan=plan)
        # Link parks are excluded from fires: per-core Eq. 4 II still
        # holds at 0.00% with the cuts in place.
        for core in report.cores:
            assert core["rel_err"] == 0.0
        # The link stages enter the interval cross-check.
        assert report.throughput["interval_predicted"] == plan.interval
        assert report.throughput["interval_measured"] == plan.interval

    def test_profile_multi_plan_refuses_pilot(self):
        design = usps_design()
        plan = plan_split(design, 2)
        with pytest.raises(ConfigurationError):
            profile_design(design, multi_plan=plan, pilot=True)


class TestShardReportEnvelope:
    def test_envelope_and_embedded_plan_round_trip(self):
        report = run_shard(tiny_design(), devices=(1, 2), images=2, seed=0)
        env = json.loads(report.to_json())
        assert env["schema_version"] == SCHEMA_VERSION
        assert env["kind"] == "shard"
        assert env["ok"] is True
        for run in env["runs"]:
            clone = MultiFpgaPlan.from_dict(run["plan"])
            assert clone.to_dict() == run["plan"]
