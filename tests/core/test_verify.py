"""Unit tests for layer-wise verification."""

import numpy as np
import pytest

from repro.core import (
    random_weights,
    tiny_design,
    usps_design,
    usps_model,
    extract_weights,
    verify_layerwise,
)
from repro.errors import ConfigurationError


class TestVerifyLayerwise:
    def test_healthy_design_passes_every_layer(self, rng):
        design = tiny_design()
        weights = random_weights(design, seed=1)
        batch = rng.uniform(0, 1, (2, 1, 8, 8)).astype(np.float32)
        report = verify_layerwise(design, weights, batch)
        assert report.passed
        assert report.first_failure is None
        assert [c.layer for c in report.checks] == ["conv1", "pool1", "fc1"]

    def test_usps_timed_mode_passes(self, rng):
        design = usps_design()
        weights = extract_weights(design, usps_model())
        batch = rng.uniform(0, 1, (1, 1, 16, 16)).astype(np.float32)
        report = verify_layerwise(design, weights, batch, timed=True)
        assert report.passed

    def test_corrupted_layer_localized(self, rng):
        # Corrupt conv1's bias: verification must fail AT conv1 (every
        # prefix from there on diverges, and the first failure names it).
        design = tiny_design()
        weights = random_weights(design, seed=1)
        weights["conv1"]["bias"] = weights["conv1"]["bias"] + 1.0
        ref_weights = random_weights(design, seed=1)
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        # Simulate with corrupted weights, compare against clean reference:
        # splice by checking the simulated graph against itself is not
        # possible, so corrupt only the *reference* side via a custom run.
        from repro.core.reference import design_reference_forward
        from repro.core.builder import build_network

        built = build_network(design, weights, batch)
        built.run_functional()
        got = built.outputs()
        clean = design_reference_forward(design, ref_weights, batch)[-1]
        assert not np.allclose(got, clean, atol=1e-3)

    def test_report_renders(self, rng):
        design = tiny_design()
        weights = random_weights(design)
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        text = verify_layerwise(design, weights, batch).render()
        assert "conv1" in text and "PASSED" in text

    def test_invalid_tolerance_rejected(self, rng):
        design = tiny_design()
        batch = rng.uniform(0, 1, (1, 1, 8, 8)).astype(np.float32)
        with pytest.raises(ConfigurationError):
            verify_layerwise(design, random_weights(design), batch, tolerance=0)

    def test_errors_are_small_everywhere(self, rng):
        design = usps_design()
        weights = extract_weights(design, usps_model())
        batch = rng.uniform(0, 1, (1, 1, 16, 16)).astype(np.float32)
        report = verify_layerwise(design, weights, batch)
        for check in report.checks:
            assert check.max_abs_error < 1e-4
