"""Unit tests for the AlexNet/VGG-16 designs."""

import pytest

from repro.core import design_resources, network_perf
from repro.core.zoo import alexnet_design, vgg16_design
from repro.fpga import XC7VX485T


class TestAlexNet:
    def test_parameter_count_matches_literature(self):
        # AlexNet has ~60-62M parameters.
        assert 58e6 < alexnet_design().weight_count() < 64e6

    def test_mac_count_matches_literature(self):
        # ~1.1 GMAC per image (724M conv + 59M FC is the grouped variant;
        # the flattened single-tower form used here is ~1.1G).
        assert 0.9e9 < alexnet_design().macs_per_image() < 1.3e9

    def test_shapes_through_the_stack(self):
        d = alexnet_design()
        shapes = [p.out_shape for p in d.placements]
        assert shapes[0] == (96, 55, 55)
        assert shapes[1] == (96, 27, 27)
        assert shapes[3] == (256, 13, 13)
        assert shapes[7] == (256, 6, 6)
        assert shapes[-1] == (1000, 1, 1)

    def test_does_not_fit_one_virtex7(self):
        # The quantified reason the paper's evaluation stopped at small
        # networks: with on-chip weights and Eq. 4's minimum parallelism,
        # AlexNet overflows every resource class.
        res = design_resources(alexnet_design())
        util = res.utilization(XC7VX485T)
        assert not res.fits(XC7VX485T)
        assert all(v > 1.0 for v in util.values())

    def test_perf_model_runs_at_scale(self):
        perf = network_perf(alexnet_design())
        assert perf.interval > 0
        assert perf.bottleneck == "conv1"


class TestVgg16:
    def test_parameter_count_matches_literature(self):
        # VGG-16 has ~138M parameters.
        assert 135e6 < vgg16_design().weight_count() < 141e6

    def test_mac_count_matches_literature(self):
        # ~15.5 GMAC per image.
        assert 15e9 < vgg16_design().macs_per_image() < 16e9

    def test_layer_count(self):
        # 13 convs + 5 pools + 3 FCs.
        d = vgg16_design()
        kinds = [s.kind for s in d.specs]
        assert kinds.count("conv") == 13
        assert kinds.count("pool") == 5
        assert kinds.count("fc") == 3

    def test_spatial_chain(self):
        d = vgg16_design()
        pools = [p.out_shape for p in d.placements if p.spec.kind == "pool"]
        assert [s[1] for s in pools] == [112, 56, 28, 14, 7]

    def test_massively_exceeds_one_device(self):
        res = design_resources(vgg16_design())
        util = res.utilization(XC7VX485T)
        # BRAM is the worst: the 138M on-chip weights need two orders of
        # magnitude more block RAM than the chip has.
        assert util["bram"] > 50.0

    def test_fc6_dominates_weight_storage(self):
        res = design_resources(vgg16_design())
        fc6 = res.per_layer["fc6"].bram
        assert fc6 > 0.5 * res.total.bram


class TestWeightStreaming:
    def test_streaming_slashes_bram(self):
        onchip = design_resources(alexnet_design()).total.bram
        streamed = design_resources(alexnet_design(weight_streaming=True)).total.bram
        assert streamed < 0.2 * onchip

    def test_streaming_shifts_bottleneck_to_fc(self):
        perf = network_perf(alexnet_design(weight_streaming=True))
        assert perf.bottleneck == "fc6"

    def test_streamed_fc_interval_is_matrix_size(self):
        from repro.core import layer_perf

        d = vgg16_design(weight_streaming=True)
        fc6 = next(p for p in d.placements if p.spec.name == "fc6")
        assert layer_perf(fc6).core_cycles == 25088 * 4096

    def test_streaming_serializes(self):
        from repro.core import design_from_json, design_to_json

        d = alexnet_design(weight_streaming=True)
        d2 = design_from_json(design_to_json(d))
        assert d2.specs == d.specs

    def test_streaming_cheaper_fc_resources(self):
        from repro.core import layer_resources

        d_on = alexnet_design()
        d_st = alexnet_design(weight_streaming=True)
        fc_on = next(p for p in d_on.placements if p.spec.name == "fc6")
        fc_st = next(p for p in d_st.placements if p.spec.name == "fc6")
        assert layer_resources(fc_st).dsp < layer_resources(fc_on).dsp
        assert layer_resources(fc_st).bram < layer_resources(fc_on).bram
