"""Test package."""
