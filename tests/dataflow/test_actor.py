"""Unit tests for the Actor coroutine helpers."""

import pytest

from repro.dataflow import Actor, ArraySource, Channel, DataflowGraph, ListSink
from repro.errors import GraphError


class Echo(Actor):
    def run(self):
        while True:
            v = yield from self.recv("in")
            yield from self.send("out", v)


def run_pair(actor, values, out_count, capacity=2):
    g = DataflowGraph("t")
    src = g.add_actor(ArraySource("src", values))
    g.add_actor(actor)
    snk = g.add_actor(ListSink("snk", count=out_count))
    g.connect(src, "out", actor, "in", capacity=capacity)
    g.connect(actor, "out", snk, "in", capacity=capacity)
    actor.daemon = True
    g.build_simulator().run()
    return snk


class TestBinding:
    def test_double_input_bind_rejected(self):
        a = Actor("a")
        a.bind_input("in", Channel("c1"))
        with pytest.raises(GraphError):
            a.bind_input("in", Channel("c2"))

    def test_double_output_bind_rejected(self):
        a = Actor("a")
        a.bind_output("out", Channel("c1"))
        with pytest.raises(GraphError):
            a.bind_output("out", Channel("c2"))

    def test_unbound_input_raises(self):
        with pytest.raises(GraphError):
            Actor("a").input("in")

    def test_unbound_output_raises(self):
        with pytest.raises(GraphError):
            Actor("a").output("out")

    def test_port_lists(self):
        a = Actor("a")
        a.bind_input("x", Channel("c1"))
        a.bind_output("y", Channel("c2"))
        assert a.input_ports == ["x"]
        assert a.output_ports == ["y"]

    def test_run_must_be_overridden(self):
        with pytest.raises(NotImplementedError):
            next(Actor("a").run())


class TestHelpers:
    def test_recv_send_roundtrip(self):
        snk = run_pair(Echo("echo"), [1, 2, 3], 3)
        assert snk.received == [1, 2, 3]

    def test_recv_send_takes_two_cycles_per_item(self):
        snk = run_pair(Echo("echo"), list(range(8)), 8)
        # II of a recv-then-send loop is 2.
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 2 for d in deltas)

    def test_relay_is_ii1(self):
        class R(Actor):
            def run(self):
                yield from self.relay("in", "out")

        snk = run_pair(R("r"), list(range(8)), 8)
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 1 for d in deltas)

    def test_relay_with_fn(self):
        class R(Actor):
            def run(self):
                yield from self.relay("in", "out", fn=lambda v: v * 10)

        snk = run_pair(R("r"), [1, 2], 2)
        assert snk.received == [10, 20]

    def test_relay_count_limits(self):
        class R(Actor):
            def run(self):
                yield from self.relay("in", "out", count=2)

        # Relay only 2 of 5; capacity must let the source drain fully or
        # its process never finishes.
        snk = run_pair(R("r"), [1, 2, 3, 4, 5], 2, capacity=8)
        assert snk.received == [1, 2]

    def test_wait_delays(self):
        class W(Actor):
            def run(self):
                v = yield from self.recv("in")
                yield from self.wait(10)
                yield from self.send("out", v)

        snk = run_pair(W("w"), [5], 1)
        assert snk.timestamps[0] >= 12

    def test_recv_all_reads_simultaneously(self):
        class Join(Actor):
            def run(self):
                for _ in range(3):
                    a, b = yield from self.recv_all(["a", "b"])
                    yield from self.send("out", a + b)

        g = DataflowGraph("t")
        s1 = g.add_actor(ArraySource("s1", [1, 2, 3]))
        s2 = g.add_actor(ArraySource("s2", [10, 20, 30]))
        j = g.add_actor(Join("join"))
        snk = g.add_actor(ListSink("snk", count=3))
        g.connect(s1, "out", j, "a")
        g.connect(s2, "out", j, "b")
        g.connect(j, "out", snk, "in")
        g.build_simulator().run()
        assert snk.received == [11, 22, 33]

    def test_send_all_writes_simultaneously(self):
        class Split(Actor):
            def run(self):
                for i in range(3):
                    v = yield from self.recv("in")
                    yield from self.send_all({"a": v, "b": -v})

        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1, 2, 3]))
        sp = g.add_actor(Split("split"))
        sa = g.add_actor(ListSink("sa", count=3))
        sb = g.add_actor(ListSink("sb", count=3))
        g.connect(src, "out", sp, "in")
        g.connect(sp, "a", sa, "in")
        g.connect(sp, "b", sb, "in")
        g.build_simulator().run()
        assert sa.received == [1, 2, 3]
        assert sb.received == [-1, -2, -3]

    def test_blocked_reason_set_while_stalled(self):
        a = Echo("echo")
        ch_in = Channel("in_ch", 2)
        ch_out = Channel("out_ch", 2)
        a.bind_input("in", ch_in)
        a.bind_output("out", ch_out)
        proc = a.run()
        ch_in.begin_cycle()
        next(proc)  # stalls on empty input
        assert "empty" in a.blocked_reason
