"""Unit tests for the standard actor library (sources, sinks, routing)."""

import pytest

from repro.dataflow import (
    ArraySource,
    DataflowGraph,
    Fork,
    Interleaver,
    ListSink,
    MapActor,
    ScheduleDemux,
)
from repro.errors import ConfigurationError


class TestArraySource:
    def test_streams_in_order(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [7, 8, 9]))
        snk = g.add_actor(ListSink("snk", count=3))
        g.connect(src, "out", snk, "in")
        g.build_simulator().run()
        assert snk.received == [7, 8, 9]

    def test_interval_throttles_rate(self):
        g = DataflowGraph("t", default_capacity=8)
        src = g.add_actor(ArraySource("src", [1, 2, 3, 4], interval=3))
        snk = g.add_actor(ListSink("snk", count=4))
        g.connect(src, "out", snk, "in")
        g.build_simulator().run()
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 3 for d in deltas)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            ArraySource("src", [1], interval=0)

    def test_empty_source_finishes(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", []))
        snk = g.add_actor(ListSink("snk", count=0))
        g.connect(src, "out", snk, "in")
        assert g.build_simulator().run().finished


class TestListSink:
    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ListSink("s", count=-1)

    def test_timestamps_align_with_values(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1, 2]))
        snk = g.add_actor(ListSink("snk", count=2))
        g.connect(src, "out", snk, "in")
        g.build_simulator().run()
        assert len(snk.timestamps) == len(snk.received) == 2
        assert snk.timestamps == sorted(snk.timestamps)


class TestMapActor:
    def test_applies_function(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1, 2, 3]))
        m = g.add_actor(MapActor("m", lambda v: v * v))
        snk = g.add_actor(ListSink("snk", count=3))
        g.connect(src, "out", m, "in")
        g.connect(m, "out", snk, "in")
        g.build_simulator().run()
        assert snk.received == [1, 4, 9]

    def test_is_daemon(self):
        assert MapActor("m", lambda v: v).daemon


class TestFork:
    def test_copies_to_all_outputs(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1, 2]))
        f = g.add_actor(Fork("f", n_outputs=3))
        sinks = [g.add_actor(ListSink(f"s{i}", count=2)) for i in range(3)]
        g.connect(src, "out", f, "in")
        for i, s in enumerate(sinks):
            g.connect(f, f"out{i}", s, "in")
        g.build_simulator().run()
        for s in sinks:
            assert s.received == [1, 2]

    def test_requires_positive_outputs(self):
        with pytest.raises(ConfigurationError):
            Fork("f", n_outputs=0)


class TestScheduleDemux:
    def _run(self, values, n_out, schedule=None):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", values))
        d = g.add_actor(ScheduleDemux("d", n_outputs=n_out, schedule=schedule))
        sched = schedule if schedule is not None else list(range(n_out))
        counts = [sum(1 for k in range(len(values)) if sched[k % len(sched)] == i) for i in range(n_out)]
        sinks = [g.add_actor(ListSink(f"s{i}", count=counts[i])) for i in range(n_out)]
        g.connect(src, "out", d, "in")
        for i, s in enumerate(sinks):
            g.connect(d, f"out{i}", s, "in")
        g.build_simulator().run()
        return [s.received for s in sinks]

    def test_round_robin_default(self):
        outs = self._run(list(range(6)), 2)
        assert outs == [[0, 2, 4], [1, 3, 5]]

    def test_custom_schedule(self):
        outs = self._run(list(range(6)), 2, schedule=[0, 0, 1])
        assert outs == [[0, 1, 3, 4], [2, 5]]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleDemux("d", n_outputs=2, schedule=[])

    def test_out_of_range_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleDemux("d", n_outputs=2, schedule=[0, 2])


class TestInterleaver:
    def _run(self, inputs, schedule=None):
        n_in = len(inputs)
        g = DataflowGraph("t")
        sources = [g.add_actor(ArraySource(f"s{i}", vals)) for i, vals in enumerate(inputs)]
        inter = g.add_actor(Interleaver("i", n_inputs=n_in, schedule=schedule))
        total = sum(len(v) for v in inputs)
        snk = g.add_actor(ListSink("snk", count=total))
        for i, s in enumerate(sources):
            g.connect(s, "out", inter, f"in{i}")
        g.connect(inter, "out", snk, "in")
        g.build_simulator().run()
        return snk.received

    def test_round_robin_merge(self):
        assert self._run([[0, 2, 4], [1, 3, 5]]) == [0, 1, 2, 3, 4, 5]

    def test_custom_schedule(self):
        # Two values from input 0, then one from input 1, cyclically.
        got = self._run([[0, 1, 3, 4], [2, 5]], schedule=[0, 0, 1])
        assert got == [0, 1, 2, 3, 4, 5]

    def test_demux_then_interleave_is_identity(self):
        # Round-robin demux into N lanes then round-robin merge restores
        # the stream: the core property the port adapters rely on.
        values = list(range(12))
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", values))
        d = g.add_actor(ScheduleDemux("d", n_outputs=3))
        inter = g.add_actor(Interleaver("i", n_inputs=3))
        snk = g.add_actor(ListSink("snk", count=12))
        g.connect(src, "out", d, "in")
        for i in range(3):
            g.connect(d, f"out{i}", inter, f"in{i}")
        g.connect(inter, "out", snk, "in")
        g.build_simulator().run()
        assert snk.received == values

    def test_out_of_range_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            Interleaver("i", n_inputs=2, schedule=[3])

    def test_requires_positive_inputs(self):
        with pytest.raises(ConfigurationError):
            Interleaver("i", n_inputs=0)
