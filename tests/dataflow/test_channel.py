"""Unit tests for the bounded FIFO channel protocol."""

import pytest

from repro.dataflow.channel import Channel
from repro.errors import ChannelProtocolError, ConfigurationError


def fresh(capacity=None):
    ch = Channel("ch", capacity)
    ch.begin_cycle()
    return ch


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Channel("bad", 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel("bad", -3)

    def test_unbounded_allowed(self):
        assert Channel("ok", None).capacity is None

    def test_name_stored(self):
        assert Channel("abc", 1).name == "abc"


class TestVisibilityProtocol:
    def test_push_not_visible_same_cycle(self):
        ch = fresh(4)
        ch.push(1)
        assert not ch.can_pop()

    def test_push_visible_next_cycle(self):
        ch = fresh(4)
        ch.push(1)
        ch.begin_cycle()
        assert ch.can_pop()
        assert ch.pop() == 1

    def test_fifo_order_preserved(self):
        ch = fresh(8)
        for v in [3, 1, 4, 1, 5]:
            ch.push(v)
            ch.begin_cycle()
        got = []
        while ch.can_pop():
            got.append(ch.pop())
            ch.begin_cycle()  # one pop per cycle
        assert got == [3, 1, 4, 1, 5]

    def test_one_push_per_cycle(self):
        ch = fresh(8)
        ch.push(1)
        assert not ch.can_push()
        with pytest.raises(ChannelProtocolError):
            ch.push(2)

    def test_one_pop_per_cycle(self):
        ch = fresh(8)
        ch.push(1)
        ch.begin_cycle()
        ch.push(2)
        ch.begin_cycle()
        assert ch.pop() == 1
        assert not ch.can_pop()
        with pytest.raises(ChannelProtocolError):
            ch.pop()

    def test_pop_empty_raises(self):
        ch = fresh(2)
        with pytest.raises(ChannelProtocolError):
            ch.pop()

    def test_peek_returns_without_removing(self):
        ch = fresh(2)
        ch.push(7)
        ch.begin_cycle()
        assert ch.peek() == 7
        assert ch.pop() == 7

    def test_peek_empty_raises(self):
        with pytest.raises(ChannelProtocolError):
            fresh(2).peek()


class TestCapacity:
    def test_full_channel_blocks_push(self):
        ch = fresh(1)
        ch.push(1)
        ch.begin_cycle()
        assert not ch.can_push()

    def test_capacity_counts_staged(self):
        ch = fresh(2)
        ch.push(1)
        ch.begin_cycle()
        ch.push(2)
        # committed 1 + staged 1 == capacity 2
        assert not ch.can_push()

    def test_pop_mid_cycle_does_not_free_space(self):
        # Order independence: the reader popping this cycle must not let
        # the writer push into the freed slot within the same cycle.
        ch = fresh(1)
        ch.push(1)
        ch.begin_cycle()
        assert ch.pop() == 1
        assert not ch.can_push()
        ch.begin_cycle()
        assert ch.can_push()

    def test_unbounded_never_blocks(self):
        ch = fresh(None)
        for i in range(100):
            ch.push(i)
            ch.begin_cycle()
        assert ch.can_push()

    def test_push_full_raises(self):
        ch = fresh(1)
        ch.push(1)
        ch.begin_cycle()
        with pytest.raises(ChannelProtocolError):
            ch.push(2)


class TestBinding:
    def test_single_writer_enforced(self):
        ch = Channel("ch")
        ch.bind_writer("a.out")
        with pytest.raises(ChannelProtocolError):
            ch.bind_writer("b.out")

    def test_single_reader_enforced(self):
        ch = Channel("ch")
        ch.bind_reader("a.in")
        with pytest.raises(ChannelProtocolError):
            ch.bind_reader("b.in")


class TestStats:
    def test_totals_counted(self):
        ch = fresh(4)
        for i in range(3):
            ch.push(i)
            ch.begin_cycle()
            ch.pop()
        assert ch.stats.total_pushed == 3
        assert ch.stats.total_popped == 3

    def test_high_water_tracked(self):
        ch = fresh(8)
        for i in range(5):
            ch.push(i)
            ch.begin_cycle()
        assert ch.stats.high_water == 5

    def test_stall_notes(self):
        ch = fresh(1)
        ch.note_full_stall()
        ch.note_empty_stall()
        d = ch.stats.as_dict()
        assert d["full_stall_cycles"] == 1
        assert d["empty_stall_cycles"] == 1

    def test_len_includes_staged(self):
        ch = fresh(4)
        ch.push(1)
        assert len(ch) == 1
        assert ch.occupancy == 0

    def test_drain_returns_everything(self):
        ch = fresh(4)
        ch.push(1)
        ch.begin_cycle()
        ch.push(2)
        assert ch.drain() == [1, 2]
        assert len(ch) == 0
