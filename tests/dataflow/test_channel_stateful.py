"""Stateful property test: Channel vs an abstract two-phase queue model.

Hypothesis drives random interleavings of push / pop / begin_cycle against
a plain-Python reference model of the intended semantics (staged pushes
become visible at the next cycle boundary; firing rules answered against
the cycle-start snapshot; at most one beat per direction per cycle). Any
divergence in observable behaviour — firing-rule answers or popped
values — is a bug in the channel.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.dataflow.channel import Channel


class ChannelModel:
    """Reference semantics of a capacity-``cap`` two-phase channel."""

    def __init__(self, cap):
        self.cap = cap
        self.committed = deque()
        self.staged = []
        self.visible_at_start = 0
        self.pushed = 0
        self.popped = 0

    def begin_cycle(self):
        self.committed.extend(self.staged)
        self.staged.clear()
        self.visible_at_start = len(self.committed)
        self.pushed = 0
        self.popped = 0

    def can_push(self):
        if self.pushed:
            return False
        if self.cap is None:
            return True
        return self.visible_at_start + len(self.staged) < self.cap

    def can_pop(self):
        return self.popped == 0 and self.popped < self.visible_at_start

    def push(self, v):
        self.staged.append(v)
        self.pushed += 1

    def pop(self):
        self.popped += 1
        return self.committed.popleft()


class ChannelComparison(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.counter = 0
        self.cap = None
        self.ch = None
        self.model = None

    @precondition(lambda self: self.ch is None)
    @rule(cap=st.one_of(st.none(), st.integers(1, 5)))
    def create(self, cap):
        self.cap = cap
        self.ch = Channel("ch", cap)
        self.model = ChannelModel(cap)
        self.ch.begin_cycle()
        self.model.begin_cycle()

    @precondition(lambda self: self.ch is not None)
    @rule()
    def begin_cycle(self):
        self.ch.begin_cycle()
        self.model.begin_cycle()

    @precondition(lambda self: self.ch is not None)
    @rule()
    def push_if_possible(self):
        assert self.ch.can_push() == self.model.can_push()
        if self.model.can_push():
            self.counter += 1
            self.ch.push(self.counter)
            self.model.push(self.counter)

    @precondition(lambda self: self.ch is not None)
    @rule()
    def pop_if_possible(self):
        assert self.ch.can_pop() == self.model.can_pop()
        if self.model.can_pop():
            assert self.ch.pop() == self.model.pop()

    @invariant()
    def occupancy_agrees(self):
        if self.ch is None:
            return
        assert self.ch.occupancy == len(self.model.committed)
        assert len(self.ch) == len(self.model.committed) + len(self.model.staged)


TestChannelStateful = ChannelComparison.TestCase
TestChannelStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
