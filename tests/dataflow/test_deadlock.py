"""Unit tests for the reconvergence/buffering analysis."""

import numpy as np
import pytest

from repro.dataflow import ArraySource, DataflowGraph, FifoStage, Fork, Interleaver, ListSink
from repro.dataflow.deadlock import ReconvergentPair, analyze_reconvergence, buffering_report
from repro.errors import ConfigurationError


def diamond(cap_a=2, cap_b=2):
    """src -> fork -> {a, b} -> join -> sink."""
    g = DataflowGraph("diamond")
    src = g.add_actor(ArraySource("src", list(range(4))))
    fork = g.add_actor(Fork("fork", n_outputs=2))
    a = g.add_actor(FifoStage("a"))
    b = g.add_actor(FifoStage("b"))
    join = g.add_actor(Interleaver("join", n_inputs=2))
    snk = g.add_actor(ListSink("snk", count=8))
    g.connect(src, "out", fork, "in")
    g.connect(fork, "out0", a, "in", capacity=cap_a)
    g.connect(fork, "out1", b, "in", capacity=cap_b)
    g.connect(a, "out", join, "in0", capacity=cap_a)
    g.connect(b, "out", join, "in1", capacity=cap_b)
    g.connect(join, "out", snk, "in")
    return g


class TestAnalyze:
    def test_diamond_detected(self):
        pairs = analyze_reconvergence(diamond())
        assert any(p.fork == "fork" and p.join == "join" for p in pairs)

    def test_path_capacities_summed(self):
        pairs = analyze_reconvergence(diamond(cap_a=2, cap_b=8))
        p = next(p for p in pairs if p.fork == "fork" and p.join == "join")
        assert p.min_capacity == 4 and p.max_capacity == 16

    def test_imbalance_ratio(self):
        pairs = analyze_reconvergence(diamond(cap_a=2, cap_b=8))
        p = next(p for p in pairs if p.fork == "fork" and p.join == "join")
        assert p.imbalance == pytest.approx(4.0)

    def test_chain_has_no_reconvergence(self):
        g = DataflowGraph("chain")
        src = g.add_actor(ArraySource("src", [1]))
        f = g.add_actor(FifoStage("f"))
        snk = g.add_actor(ListSink("snk", count=1))
        g.connect(src, "out", f, "in")
        g.connect(f, "out", snk, "in")
        assert analyze_reconvergence(g) == []

    def test_invalid_max_paths_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_reconvergence(diamond(), max_paths=1)

    def test_unbounded_branch_capacity_is_none(self):
        g = diamond(cap_a=2, cap_b=8)
        # Rebind one edge of branch b as an unbounded channel.
        ch = g.channels["b.out->join.in1"]
        ch.capacity = None
        pairs = analyze_reconvergence(g)
        p = next(p for p in pairs if p.fork == "fork" and p.join == "join")
        caps = dict((path[1], cap) for path, cap in p.paths)
        assert caps["b"] is None  # unbounded hop -> unbounded path
        assert caps["a"] == 4
        assert p.unbounded_paths == 1
        assert p.min_capacity == 4 and p.max_capacity == 4

    def test_mixed_unbounded_bounded_is_infinite_imbalance(self):
        g = diamond(cap_a=2, cap_b=8)
        g.channels["b.out->join.in1"].capacity = None
        p = next(p for p in analyze_reconvergence(g)
                 if p.fork == "fork" and p.join == "join")
        # An unbounded branch can run arbitrarily far ahead of the
        # bounded one — worst possible imbalance, not silence.
        assert p.imbalance == float("inf")

    def test_all_unbounded_pair(self):
        g = diamond()
        for ch in g.channels.values():
            ch.capacity = None
        p = next(p for p in analyze_reconvergence(g)
                 if p.fork == "fork" and p.join == "join")
        assert p.min_capacity is None and p.max_capacity is None
        assert p.imbalance == pytest.approx(1.0)

    def test_usps_network_graph_has_parallel_branches(self, rng):
        from repro.core import random_weights, usps_design
        from repro.core.builder import build_network

        d = usps_design()
        built = build_network(
            d, random_weights(d), rng.uniform(0, 1, (1, 1, 16, 16)).astype(np.float32)
        )
        pairs = analyze_reconvergence(built.graph)
        # conv1's 6 output ports reconverge at conv2's core.
        assert any(p.fork == "conv1.core" and p.join == "conv2.core" for p in pairs)


class TestReport:
    def test_balanced_no_warning(self):
        text = buffering_report(diamond(2, 2))
        assert "WARNING" not in text
        assert "reconvergent pair" in text

    def test_imbalanced_warns(self):
        text = buffering_report(diamond(2, 16), warn_imbalance=4.0)
        assert "WARNING" in text

    def test_mixed_unbounded_warns_for_bounded_sibling(self):
        g = diamond(cap_a=2, cap_b=8)
        g.channels["b.out->join.in1"].capacity = None
        text = buffering_report(g, warn_imbalance=4.0)
        assert "WARNING" in text and "unbounded" in text

    def test_all_unbounded_no_warning(self):
        g = diamond()
        for ch in g.channels.values():
            ch.capacity = None
        text = buffering_report(g, warn_imbalance=4.0)
        assert "WARNING" not in text

    def test_chain_report(self):
        g = DataflowGraph("c")
        src = g.add_actor(ArraySource("src", [1]))
        snk = g.add_actor(ListSink("snk", count=1))
        g.connect(src, "out", snk, "in")
        assert "no reconvergent" in buffering_report(g)
