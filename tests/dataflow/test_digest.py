"""Stable output digests: quantized CRC32 over the float32 payload.

`stable_digest` is the cross-engine identity used by the equivalence
harness and the benchmark baselines. It must be deterministic across
runs and processes (unlike `hash()`), sensitive to any value or shape
change, and canonical over input container types.
"""

import numpy as np

from repro.dataflow import stable_digest


class TestStableDigest:
    def test_deterministic_and_prefixed(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        d = stable_digest(arr)
        assert d == stable_digest(arr.copy())
        assert d.startswith("crc32:") and len(d) == len("crc32:") + 8

    def test_container_canonicalization(self):
        # Lists, float64 arrays and non-contiguous views of the same
        # float32 values all digest identically.
        vals = [1.0, -2.5, 3.25]
        arr32 = np.array(vals, dtype=np.float32)
        arr64 = np.array(vals, dtype=np.float64)
        strided = np.stack([arr32, arr32])[:, ::1][0]
        assert stable_digest(vals) == stable_digest(arr32)
        assert stable_digest(arr64) == stable_digest(arr32)
        assert stable_digest(strided) == stable_digest(arr32)

    def test_value_sensitivity(self):
        a = np.zeros(8, dtype=np.float32)
        b = a.copy()
        b[3] = np.float32(1e-7)
        assert stable_digest(a) != stable_digest(b)

    def test_shape_sensitivity(self):
        flat = np.arange(6, dtype=np.float32)
        assert stable_digest(flat) != stable_digest(flat.reshape(2, 3))

    def test_empty_ok(self):
        assert stable_digest([]) == stable_digest(np.empty(0, np.float32))
