"""Unit tests for the stream-endpoint protocols and the IPC endpoints."""

import queue
from collections import deque

import pytest

from repro.dataflow import ArraySource, Channel, ListSink, Simulator
from repro.dataflow.endpoint import QueueSink, QueueSource, Sink, Source, StreamEndpoint
from repro.dataflow.link import LinkRxActor, LinkTxActor
from repro.errors import ConfigurationError


class TestProtocolConformance:
    def test_channel_is_both_faces(self):
        ch = Channel("c", 2)
        assert isinstance(ch, Source)
        assert isinstance(ch, Sink)
        assert isinstance(ch, StreamEndpoint)

    def test_queue_endpoints_keep_the_full_surface(self):
        assert isinstance(QueueSource("qs", deque()), StreamEndpoint)
        assert isinstance(QueueSink("qk", deque()), StreamEndpoint)

    def test_an_arbitrary_object_is_neither(self):
        assert not isinstance(object(), Source)
        assert not isinstance(object(), Sink)


class TestQueueSource:
    def test_feeds_from_deque_under_two_phase_contract(self):
        feed = deque([10, 20, 30])
        src = QueueSource("qs", feed)
        snk = ListSink("snk", count=3)
        snk.bind_input("in", src)
        res = Simulator([snk], [src]).run()
        assert res.finished
        assert snk.received == [10, 20, 30]
        # A value already queued at the cycle-0 boundary "arrived during
        # the previous cycle": visible (and popped) at cycle 0.
        assert snk.timestamps[0] == 0
        # One word per cycle thereafter.
        assert snk.timestamps == [0, 1, 2]

    def test_feeds_from_queue_queue(self):
        feed = queue.Queue()
        for v in (1, 2):
            feed.put_nowait(v)
        src = QueueSource("qs", feed)
        snk = ListSink("snk", count=2)
        snk.bind_input("in", src)
        assert Simulator([snk], [src]).run().finished
        assert snk.received == [1, 2]

    def test_words_per_cycle_paces_ingress(self):
        feed = deque(range(6))
        src = QueueSource("qs", feed, capacity=8, words_per_cycle=1)
        snk = ListSink("snk", count=6)
        snk.bind_input("in", src)
        Simulator([snk], [src]).run()
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 1 for d in deltas)

    def test_late_arrivals_still_commit_on_event_engine(self):
        # The foreign producer is invisible to the engine's activity
        # tracking; the endpoint must keep itself polled.
        feed = deque()
        src = QueueSource("qs", feed)
        snk = ListSink("snk", count=1)
        snk.bind_input("in", src)
        sim = Simulator([snk], [src])
        sim.run_cycles(3)
        feed.append(99)
        res = sim.run()
        assert res.finished
        assert snk.received == [99]

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            QueueSource("qs", deque(), words_per_cycle=0)


class TestQueueSink:
    def test_drains_into_deque(self):
        out = deque()
        src = ArraySource("src", [7, 8, 9])
        qsnk = QueueSink("qk", out)
        src.bind_output("out", qsnk)
        res = Simulator([src], [qsnk]).run()
        assert res.finished
        assert list(out) == [7, 8, 9]

    def test_drains_into_queue_queue(self):
        out = queue.Queue()
        src = ArraySource("src", [4, 5])
        qsnk = QueueSink("qk", out)
        src.bind_output("out", qsnk)
        Simulator([src], [qsnk]).run()
        assert [out.get_nowait(), out.get_nowait()] == [4, 5]

    def test_backlog_drains_after_producer_finishes(self):
        # words_per_cycle=1 with a finished producer: the leftover
        # committed words must keep draining (the endpoint re-adds itself
        # to the touched set), not hang the event engine.
        out = deque()
        src = ArraySource("src", list(range(5)))
        qsnk = QueueSink("qk", out, capacity=8, words_per_cycle=1)
        src.bind_output("out", qsnk)
        res = Simulator([src], [qsnk]).run()
        assert res.finished
        assert list(out) == list(range(5))

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            QueueSink("qk", deque(), words_per_cycle=0)


class TestIpcHop:
    """A simulated pipeline crossing a foreign queue mid-stream."""

    @pytest.mark.parametrize("scheduler", ["event", "lockstep"])
    def test_values_round_trip_in_order(self, scheduler):
        hop = deque()
        values = list(range(20))
        src = ArraySource("src", values)
        qsnk = QueueSink("egress", hop)
        qsrc = QueueSource("ingress", hop)
        snk = ListSink("snk", count=len(values))
        src.bind_output("out", qsnk)
        snk.bind_input("in", qsrc)
        res = Simulator(
            [src, snk], [qsnk, qsrc], scheduler=scheduler
        ).run()
        assert res.finished
        assert snk.received == values

    def test_link_actors_speak_the_same_protocol(self):
        # A paced board-to-board hop in the same spot: the consumer code
        # is identical — only the transport (and its timing) changed.
        values = list(range(8))
        src = ArraySource("src", values)
        tx = LinkTxActor("link0.tx", words_per_image=len(values), beat=2)
        rx = LinkRxActor("link0.rx", words_per_image=len(values))
        snk = ListSink("snk", count=len(values))
        a, wire, b = Channel("a", 4), Channel("wire", 4), Channel("b", 4)
        src.bind_output("out", a)
        tx.bind_input("in", a)
        tx.bind_output("out", wire)
        rx.bind_input("in", wire)
        rx.bind_output("out", b)
        snk.bind_input("in", b)
        res = Simulator([src, tx, rx, snk], [a, wire, b]).run()
        assert res.finished
        assert snk.received == values
