"""Unit tests for the untimed functional executor."""

from repro.dataflow import (
    ArraySource,
    DataflowGraph,
    FifoStage,
    FunctionalExecutor,
    ListSink,
    MapActor,
)


def build(n=20):
    g = DataflowGraph("t", default_capacity=1)
    src = g.add_actor(ArraySource("src", list(range(n))))
    m = g.add_actor(MapActor("m", lambda v: v + 1))
    f = g.add_actor(FifoStage("f"))
    snk = g.add_actor(ListSink("snk", count=n))
    g.connect(src, "out", m, "in")
    g.connect(m, "out", f, "in")
    g.connect(f, "out", snk, "in")
    return g, snk


class TestFunctionalExecutor:
    def test_produces_same_values_as_timed_run(self):
        g1, s1 = build()
        g1.build_simulator().run()
        g2, s2 = build()
        FunctionalExecutor(g2).run()
        assert s1.received == s2.received

    def test_restores_capacities_afterwards(self):
        g, _ = build()
        caps = {n: c.capacity for n, c in g.channels.items()}
        FunctionalExecutor(g).run()
        assert {n: c.capacity for n, c in g.channels.items()} == caps

    def test_finishes(self):
        g, _ = build()
        assert FunctionalExecutor(g).run().finished

    def test_tight_capacity_graph_still_completes(self):
        # Capacity-1 everywhere is throughput-hostile but must not
        # deadlock either executor on a feed-forward chain.
        g, snk = build(n=50)
        FunctionalExecutor(g).run()
        assert snk.received == [v + 1 for v in range(50)]
