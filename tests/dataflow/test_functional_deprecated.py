"""The module-level functional.run() shim is deprecated but still works."""

import pytest

from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.dataflow import functional


def tiny_graph():
    g = DataflowGraph("g", default_capacity=2)
    src = g.add_actor(ArraySource("src", [1, 2, 3]))
    snk = g.add_actor(ListSink("snk", count=3))
    g.connect(src, "out", snk, "in")
    return g, snk


def test_run_warns_and_forwards_untimed():
    g, snk = tiny_graph()
    with pytest.warns(DeprecationWarning, match="functional.run"):
        res = functional.run(g)
    assert res.finished
    assert list(snk.received) == [1, 2, 3]


def test_run_forwards_to_given_simulator():
    g, snk = tiny_graph()
    sim = g.build_simulator()
    with pytest.warns(DeprecationWarning):
        res = functional.run(g, simulator=sim)
    assert res.finished
    assert list(snk.received) == [1, 2, 3]
