"""Unit tests for dataflow graph assembly and analysis."""

import networkx as nx
import pytest

from repro.dataflow import ArraySource, DataflowGraph, FifoStage, ListSink
from repro.errors import GraphError


def chain_graph():
    g = DataflowGraph("chain")
    src = g.add_actor(ArraySource("src", [1]))
    f1 = g.add_actor(FifoStage("f1"))
    f2 = g.add_actor(FifoStage("f2"))
    snk = g.add_actor(ListSink("snk", count=1))
    g.connect(src, "out", f1, "in")
    g.connect(f1, "out", f2, "in")
    g.connect(f2, "out", snk, "in")
    return g


class TestConstruction:
    def test_duplicate_actor_rejected(self):
        g = DataflowGraph("t")
        g.add_actor(FifoStage("x"))
        with pytest.raises(GraphError):
            g.add_actor(FifoStage("x"))

    def test_duplicate_channel_rejected(self):
        g = DataflowGraph("t")
        g.add_channel("c")
        with pytest.raises(GraphError):
            g.add_channel("c")

    def test_connect_requires_registered_actors(self):
        g = DataflowGraph("t")
        a = ArraySource("a", [1])
        b = ListSink("b", count=1)
        g.add_actor(a)
        with pytest.raises(GraphError):
            g.connect(a, "out", b, "in")

    def test_connect_names_channel(self):
        g = DataflowGraph("t")
        a = g.add_actor(ArraySource("a", [1]))
        b = g.add_actor(ListSink("b", count=1))
        ch = g.connect(a, "out", b, "in")
        assert "a.out" in ch.name and "b.in" in ch.name

    def test_default_capacity_applied(self):
        g = DataflowGraph("t", default_capacity=7)
        a = g.add_actor(ArraySource("a", [1]))
        b = g.add_actor(ListSink("b", count=1))
        assert g.connect(a, "out", b, "in").capacity == 7


class TestValidation:
    def test_dangling_channel_rejected(self):
        g = DataflowGraph("t")
        g.add_channel("dangling")
        with pytest.raises(GraphError):
            g.validate()

    def test_valid_graph_passes(self):
        chain_graph().validate()


class TestAnalysis:
    def test_to_networkx_structure(self):
        nxg = chain_graph().to_networkx()
        assert set(nxg.nodes) == {"src", "f1", "f2", "snk"}
        assert nxg.number_of_edges() == 3

    def test_topological_layers(self):
        layers = chain_graph().topological_layers()
        assert layers == [["src"], ["f1"], ["f2"], ["snk"]]

    def test_sources_and_sinks(self):
        g = chain_graph()
        assert g.sources() == ["src"]
        assert g.sinks() == ["snk"]

    def test_edge_annotations(self):
        nxg = chain_graph().to_networkx()
        _, _, data = next(iter(nxg.edges(data=True)))
        assert "channel" in data and "capacity" in data

    def test_cycle_detection(self):
        g = DataflowGraph("t")
        f1 = g.add_actor(FifoStage("f1"))
        f2 = g.add_actor(FifoStage("f2", src="in2", dst="out2"))
        g.connect(f1, "out", f2, "in2")
        g.connect(f2, "out2", f1, "in")
        with pytest.raises(GraphError):
            g.topological_layers()
