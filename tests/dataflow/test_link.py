"""Unit tests for the board-to-board link actors."""

import pytest

from repro.dataflow import ArraySource, Channel, ListSink, Simulator
from repro.dataflow.link import LinkRxActor, LinkTxActor
from repro.errors import ConfigurationError


def link_pipeline(n=12, beat=1, capacity=4):
    src = ArraySource("src", list(range(n)))
    tx = LinkTxActor("link0.tx", words_per_image=n, beat=beat)
    rx = LinkRxActor("link0.rx", words_per_image=n)
    snk = ListSink("snk", count=n)
    a, wire, b = Channel("a", capacity), Channel("wire", capacity), Channel("b", capacity)
    src.bind_output("out", a)
    tx.bind_input("in", a)
    tx.bind_output("out", wire)
    rx.bind_input("in", wire)
    rx.bind_output("out", b)
    snk.bind_input("in", b)
    return Simulator([src, tx, rx, snk], [a, wire, b]), snk


class TestPacing:
    def test_beat_one_is_transparent(self):
        sim, snk = link_pipeline(beat=1)
        assert sim.run().finished
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 1 for d in deltas)

    @pytest.mark.parametrize("beat", [2, 3, 5])
    def test_beat_paces_steady_state(self, beat):
        sim, snk = link_pipeline(beat=beat)
        assert sim.run().finished
        # Steady state: one word per `beat` cycles end to end.
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert deltas[-6:] == [beat] * 6

    def test_values_survive_in_order(self):
        sim, snk = link_pipeline(n=17, beat=3)
        sim.run()
        assert snk.received == list(range(17))

    @pytest.mark.parametrize("scheduler", ["event", "lockstep"])
    def test_engines_agree(self, scheduler):
        sim, snk = link_pipeline(n=10, beat=4)
        res = sim.run()
        ref = (res.cycles, snk.timestamps)
        sim2, snk2 = link_pipeline(n=10, beat=4)
        sim2.scheduler = scheduler
        res2 = sim2.run()
        assert (res2.cycles, snk2.timestamps) == ref


class TestValidation:
    def test_tx_rejects_bad_beat(self):
        with pytest.raises(ConfigurationError):
            LinkTxActor("tx", words_per_image=4, beat=0)

    def test_tx_rejects_bad_words(self):
        with pytest.raises(ConfigurationError):
            LinkTxActor("tx", words_per_image=0)

    def test_rx_rejects_bad_words(self):
        with pytest.raises(ConfigurationError):
            LinkRxActor("rx", words_per_image=0)

    def test_links_are_daemons(self):
        assert LinkTxActor("tx", 4).daemon
        assert LinkRxActor("rx", 4).daemon
