"""Event-vs-lockstep scheduler equivalence regression tests.

The event engine must be a pure optimization: for every well-formed graph it
has to reproduce the lock-step reference *bit for bit* — total cycle count,
every output value and its arrival timestamp, and every per-channel
statistic including the retroactively charged stall counters. Each test
builds the same graph twice (one fresh build per scheduler) and diffs the
complete observable outcome.
"""

import numpy as np
import pytest

from repro.dataflow import (
    Actor,
    ArraySource,
    DataflowGraph,
    FifoStage,
    Fork,
    Interleaver,
    ListSink,
    MapActor,
    ScheduleDemux,
)
from repro.errors import ConfigurationError, DeadlockError

SCHEDULERS = ("lockstep", "event")


def run_both(factory, **run_kwargs):
    """Build the graph once per scheduler, run, return both outcomes."""
    out = {}
    for sched in SCHEDULERS:
        g, sinks = factory()
        res = g.build_simulator(scheduler=sched).run(**run_kwargs)
        out[sched] = {
            "cycles": res.cycles,
            "finished": res.finished,
            "stats": res.channel_stats,
            "received": [list(s.received) for s in sinks],
            "timestamps": [list(s.timestamps) for s in sinks],
        }
    return out["lockstep"], out["event"]


def assert_identical(ref, got):
    assert got["cycles"] == ref["cycles"]
    assert got["finished"] == ref["finished"]
    assert got["timestamps"] == ref["timestamps"]
    for a, b in zip(ref["received"], got["received"]):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
    assert got["stats"] == ref["stats"]


class TestPrimitives:
    def test_linear_chain_with_backpressure(self):
        def factory():
            g = DataflowGraph("chain", default_capacity=2)
            src = g.add_actor(ArraySource("src", list(range(30))))
            fifo = g.add_actor(FifoStage("fifo"))
            # Slow mapper: capacity-1 output chokes the chain upstream.
            mp = g.add_actor(MapActor("map", lambda v: v + 100))
            snk = g.add_actor(ListSink("snk", count=30))
            g.connect(src, "out", fifo, "in", capacity=2)
            g.connect(fifo, "out", mp, "in", capacity=1)
            g.connect(mp, "out", snk, "in", capacity=1)
            return g, [snk]

        assert_identical(*run_both(factory))

    def test_bursty_source_interval(self):
        def factory():
            g = DataflowGraph("burst", default_capacity=2)
            src = g.add_actor(ArraySource("src", list(range(12)), interval=7))
            snk = g.add_actor(ListSink("snk", count=12))
            g.connect(src, "out", snk, "in")
            return g, [snk]

        assert_identical(*run_both(factory))

    def test_fork_demux_interleave_diamond(self):
        def factory():
            g = DataflowGraph("diamond", default_capacity=2)
            src = g.add_actor(ArraySource("src", list(range(16)), interval=2))
            fork = g.add_actor(Fork("fork", n_outputs=2))
            a = g.add_actor(FifoStage("a"))
            b = g.add_actor(MapActor("b", lambda v: -v))
            join = g.add_actor(Interleaver("join", n_inputs=2))
            dmx = g.add_actor(ScheduleDemux("dmx", n_outputs=2, schedule=[0, 0, 1]))
            s0 = g.add_actor(ListSink("s0", count=22))
            s1 = g.add_actor(ListSink("s1", count=10))
            g.connect(src, "out", fork, "in")
            g.connect(fork, "out0", a, "in", capacity=3)
            g.connect(fork, "out1", b, "in", capacity=2)
            g.connect(a, "out", join, "in0", capacity=2)
            g.connect(b, "out", join, "in1", capacity=2)
            g.connect(join, "out", dmx, "in", capacity=1)
            g.connect(dmx, "out0", s0, "in", capacity=2)
            g.connect(dmx, "out1", s1, "in", capacity=2)
            return g, [s0, s1]

        assert_identical(*run_both(factory))

    def test_wait_heavy_actor(self):
        def factory():
            class Pulsed(Actor):
                def run(self):
                    for i in range(5):
                        yield from self.wait(37)
                        yield from self.send("out", i)

            g = DataflowGraph("pulse", default_capacity=2)
            p = g.add_actor(Pulsed("pulse"))
            snk = g.add_actor(ListSink("snk", count=5))
            g.connect(p, "out", snk, "in")
            return g, [snk]

        assert_identical(*run_both(factory))

    def test_until_stops_at_same_point(self):
        for sched in SCHEDULERS:
            g = DataflowGraph("u", default_capacity=4)
            src = g.add_actor(ArraySource("src", list(range(50))))
            snk = g.add_actor(ListSink("snk", count=50))
            g.connect(src, "out", snk, "in")
            res = g.build_simulator(scheduler=sched).run(
                until=lambda: len(snk.received) >= 7
            )
            if sched == "lockstep":
                ref = (res.cycles, list(snk.received), res.channel_stats)
            else:
                assert (res.cycles, list(snk.received), res.channel_stats) == ref

    def test_run_cycles_interleaved_with_run(self):
        outcomes = {}
        for sched in SCHEDULERS:
            g = DataflowGraph("rc", default_capacity=2)
            src = g.add_actor(ArraySource("src", list(range(20)), interval=3))
            snk = g.add_actor(ListSink("snk", count=20))
            g.connect(src, "out", snk, "in")
            sim = g.build_simulator(scheduler=sched)
            sim.run_cycles(11)
            mid = (sim.cycle, list(snk.received))
            res = sim.run()
            outcomes[sched] = (mid, res.cycles, snk.timestamps, res.channel_stats)
        assert outcomes["event"] == outcomes["lockstep"]


class TestNetworks:
    @pytest.mark.parametrize("memory_system", ["behavioral", "literal"])
    def test_tiny_network_identical(self, memory_system, rng):
        from repro.core import random_weights, tiny_design
        from repro.core.builder import build_network

        design = tiny_design()
        weights = random_weights(design, seed=7)
        batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)

        outcomes = {}
        for sched in SCHEDULERS:
            built = build_network(
                design, weights, batch,
                memory_system=memory_system, loop_overhead=2,
            )
            res = built.run(scheduler=sched)
            outcomes[sched] = (res.cycles, built.outputs(), res.channel_stats)
        ref, got = outcomes["lockstep"], outcomes["event"]
        assert got[0] == ref[0]
        np.testing.assert_array_equal(got[1], ref[1])
        assert got[2] == ref[2]


class TestCompiledNetworks:
    """Three-way equivalence on the design-built network.

    The compiled engine's contract is value identity (stable digests)
    and fire-count identity; its cycle accounting is the analytic model,
    so cycles / channel stats / timestamps are deliberately excluded.
    """

    def test_tiny_network_three_way(self, rng):
        import warnings

        from repro.compiled import CompiledFallbackWarning
        from repro.core import random_weights, tiny_design
        from repro.core.builder import build_network
        from repro.dataflow import stable_digest

        design = tiny_design()
        weights = random_weights(design, seed=7)
        batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)

        outcomes = {}
        for sched in SCHEDULERS + ("compiled",):
            built = build_network(design, weights, batch, loop_overhead=2)
            with warnings.catch_warnings():
                warnings.simplefilter("error", CompiledFallbackWarning)
                res = built.run(scheduler=sched)
            fires = {
                actor: [p["fires"] for p in procs]
                for actor, procs in res.actor_stats.items()
            }
            outcomes[sched] = (stable_digest(built.outputs()), fires)
        ref = outcomes["lockstep"]
        assert outcomes["event"] == ref
        assert outcomes["compiled"] == ref


class TestDeadlock:
    def deadlocked_graph(self):
        g = DataflowGraph("dl", default_capacity=2)
        src = g.add_actor(ArraySource("src", [1, 2]))
        snk = g.add_actor(ListSink("snk", count=5))
        g.connect(src, "out", snk, "in")
        return g

    def test_both_schedulers_raise(self):
        for sched in SCHEDULERS:
            with pytest.raises(DeadlockError) as exc:
                self.deadlocked_graph().build_simulator(
                    stall_limit=50, scheduler=sched
                ).run()
            assert "snk" in str(exc.value)

    def test_event_detection_is_immediate(self):
        # Lock-step burns stall_limit cycles before giving up; the event
        # engine proves no process can ever run again and raises at once.
        with pytest.raises(DeadlockError) as lock:
            self.deadlocked_graph().build_simulator(
                stall_limit=5000, scheduler="lockstep"
            ).run()
        with pytest.raises(DeadlockError) as event:
            self.deadlocked_graph().build_simulator(
                stall_limit=5000, scheduler="event"
            ).run()
        assert lock.value.cycle >= 5000
        assert event.value.cycle < 10
        assert event.value.blocked == lock.value.blocked


class TestConfig:
    def test_unknown_scheduler_rejected(self):
        g = DataflowGraph("cfg")
        g.add_actor(ArraySource("src", [1]))
        with pytest.raises(ConfigurationError):
            g.build_simulator(scheduler="quantum")


class TestFaultedEquivalence:
    """Fault injection must not break scheduler equivalence.

    Channel faults are consulted once per pending commit batch — a
    scheduler-independent sequence — so under jitter/DMA scenarios the
    engines must still agree on EVERYTHING, per-channel stall counters
    included. Actor stall windows are also identical under both engines,
    but the charging of stall statistics during a skipped resumption
    legitimately differs (lock-step skips the actor entirely; the event
    engine retro-charges parked waits), so slowdown scenarios assert
    cycles and values only.
    """

    def run_both_faulted(self, factory, scenario, seed=11):
        from repro.faults import arm_faults

        out = {}
        for sched in SCHEDULERS:
            g, sinks = factory()
            armed = arm_faults(g, scenario, seed)
            sim = g.build_simulator(scheduler=sched)
            sim.faults = armed
            res = sim.run()
            out[sched] = {
                "cycles": res.cycles,
                "finished": res.finished,
                "stats": res.channel_stats,
                "received": [list(s.received) for s in sinks],
                "timestamps": [list(s.timestamps) for s in sinks],
                "holds": armed.hold_cycles(),
            }
        return out["lockstep"], out["event"]

    def diamond_factory(self):
        def factory():
            g = DataflowGraph("diamond", default_capacity=2)
            src = g.add_actor(ArraySource("src", list(range(16)), interval=2))
            fork = g.add_actor(Fork("fork", n_outputs=2))
            a = g.add_actor(FifoStage("a"))
            b = g.add_actor(MapActor("b", lambda v: -v))
            join = g.add_actor(Interleaver("join", n_inputs=2))
            s = g.add_actor(ListSink("s", count=32))
            g.connect(src, "out", fork, "in")
            g.connect(fork, "out0", a, "in", capacity=3)
            g.connect(fork, "out1", b, "in", capacity=2)
            g.connect(a, "out", join, "in0", capacity=2)
            g.connect(b, "out", join, "in1", capacity=2)
            g.connect(join, "out", s, "in", capacity=2)
            return g, [s]

        return factory

    def test_jitter_full_identity(self):
        from repro.faults import ChannelJitter, FaultScenario

        sc = FaultScenario(
            "jitter", (ChannelJitter(probability=0.5, max_delay=3),)
        )
        ref, got = self.run_both_faulted(self.diamond_factory(), sc)
        assert got == ref
        assert ref["holds"] > 0  # the fault actually fired

    def test_throttle_full_identity(self):
        from repro.faults import DmaThrottle, FaultScenario

        sc = FaultScenario(
            "dma", (DmaThrottle(channels="src.*", period=3, burst=4),)
        )
        ref, got = self.run_both_faulted(self.diamond_factory(), sc)
        assert got == ref
        assert ref["holds"] > 0

    def test_slowdown_cycles_and_values_identical(self):
        from repro.faults import ActorSlowdown, FaultScenario

        sc = FaultScenario(
            "slowdown", (ActorSlowdown(mean_gap=10, max_stall=5),)
        )
        ref, got = self.run_both_faulted(self.diamond_factory(), sc)
        assert got["cycles"] == ref["cycles"]
        assert got["finished"] == ref["finished"]
        assert got["received"] == ref["received"]
        assert got["timestamps"] == ref["timestamps"]
        assert ref["cycles"] > 0

    @pytest.mark.parametrize("memory_system", ["behavioral", "literal"])
    def test_tiny_network_faulted_identical(self, memory_system, rng):
        from repro.core import random_weights, tiny_design
        from repro.core.builder import build_network
        from repro.faults import ChannelJitter, DmaThrottle, FaultScenario

        sc = FaultScenario(
            "mixed",
            (
                ChannelJitter(probability=0.3, max_delay=2),
                DmaThrottle(channels="dma_in.*", period=7, burst=5),
            ),
        )
        design = tiny_design()
        weights = random_weights(design, seed=7)
        batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)
        outcomes = {}
        for sched in SCHEDULERS:
            from repro.faults import arm_faults

            built = build_network(
                design, weights, batch, memory_system=memory_system,
            )
            armed = arm_faults(built.graph, sc, seed=3)
            sim = built.graph.build_simulator(scheduler=sched)
            sim.faults = armed
            res = sim.run()
            built.result = res
            outcomes[sched] = (res.cycles, built.outputs(), res.channel_stats)
        ref, got = outcomes["lockstep"], outcomes["event"]
        assert got[0] == ref[0]
        np.testing.assert_array_equal(got[1], ref[1])
        assert got[2] == ref[2]

    def test_unfaulted_network_matches_compiled(self, rng):
        # The unfaulted path of the faulted-equivalence setup must agree
        # with the compiled engine on values — same build recipe, no
        # fault plan armed.
        from repro.core import random_weights, tiny_design
        from repro.core.builder import build_network
        from repro.dataflow import stable_digest

        design = tiny_design()
        weights = random_weights(design, seed=7)
        batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)
        digests = {}
        for sched in SCHEDULERS + ("compiled",):
            built = build_network(design, weights, batch)
            built.run(scheduler=sched)
            digests[sched] = stable_digest(built.outputs())
        assert len(set(digests.values())) == 1

    def test_compiled_rejects_fault_plans(self, rng):
        from repro.core import random_weights, tiny_design
        from repro.core.builder import build_network
        from repro.faults import ChannelJitter, FaultScenario, arm_faults

        design = tiny_design()
        weights = random_weights(design, seed=7)
        batch = rng.uniform(-1, 1, (2, 1, 8, 8)).astype(np.float32)
        built = build_network(design, weights, batch)
        sc = FaultScenario(
            "jitter", (ChannelJitter(probability=0.3, max_delay=2),)
        )
        sim = built.graph.build_simulator(scheduler="compiled")
        sim.faults = arm_faults(built.graph, sc, seed=3)
        with pytest.raises(ConfigurationError, match="interpreted engine"):
            sim.run()
