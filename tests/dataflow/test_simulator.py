"""Unit tests for the cycle-level simulator."""

import pytest

from repro.dataflow import (
    Actor,
    ArraySource,
    Channel,
    DataflowGraph,
    FifoStage,
    ListSink,
    Simulator,
)
from repro.errors import DeadlockError, SimulationError


def simple_graph(n=5, capacity=2):
    g = DataflowGraph("t", default_capacity=capacity)
    src = g.add_actor(ArraySource("src", list(range(n))))
    snk = g.add_actor(ListSink("snk", count=n))
    g.connect(src, "out", snk, "in")
    return g, src, snk


class TestRun:
    def test_finishes_and_reports_cycles(self):
        g, _, snk = simple_graph()
        res = g.build_simulator().run()
        assert res.finished
        assert res.cycles > 0
        assert snk.received == [0, 1, 2, 3, 4]

    def test_values_cross_one_channel_in_one_cycle(self):
        g, _, snk = simple_graph()
        g.build_simulator().run()
        # First value pushed in cycle 0 is visible (and popped) in cycle 1.
        assert snk.timestamps[0] == 1

    def test_source_rate_one_per_cycle(self):
        g, _, snk = simple_graph(n=6, capacity=4)
        g.build_simulator().run()
        deltas = [b - a for a, b in zip(snk.timestamps, snk.timestamps[1:])]
        assert all(d == 1 for d in deltas)

    def test_channel_stats_in_result(self):
        g, _, _ = simple_graph()
        res = g.build_simulator().run()
        (stats,) = res.channel_stats.values()
        assert stats["total_pushed"] == 5
        assert stats["total_popped"] == 5

    def test_max_cycles_enforced(self):
        g, _, _ = simple_graph(n=100)
        with pytest.raises(SimulationError):
            g.build_simulator().run(max_cycles=3)

    def test_until_predicate_stops_early(self):
        g, _, snk = simple_graph(n=50, capacity=4)
        sim = g.build_simulator()
        res = sim.run(until=lambda: len(snk.received) >= 5)
        assert not res.finished
        assert 5 <= len(snk.received) <= 6

    def test_run_cycles_steps_exactly(self):
        g, _, snk = simple_graph(n=10, capacity=4)
        sim = g.build_simulator()
        sim.run_cycles(3)
        assert sim.cycle == 3
        n3 = len(snk.received)
        sim.run_cycles(3)
        assert len(snk.received) > n3


class TestDeadlock:
    def test_sink_wanting_more_than_produced_deadlocks(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1, 2]))
        snk = g.add_actor(ListSink("snk", count=5))
        g.connect(src, "out", snk, "in")
        with pytest.raises(DeadlockError) as exc:
            g.build_simulator(stall_limit=50).run()
        assert "snk" in str(exc.value)

    def test_deadlock_reports_blocked_reason(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1]))
        snk = g.add_actor(ListSink("snk", count=3))
        g.connect(src, "out", snk, "in")
        with pytest.raises(DeadlockError) as exc:
            g.build_simulator(stall_limit=10).run()
        assert exc.value.blocked

    def test_daemon_does_not_block_completion(self):
        g = DataflowGraph("t")
        src = g.add_actor(ArraySource("src", [1, 2, 3]))
        fifo = g.add_actor(FifoStage("fifo"))  # daemon by default
        snk = g.add_actor(ListSink("snk", count=3))
        g.connect(src, "out", fifo, "in")
        g.connect(fifo, "out", snk, "in")
        res = g.build_simulator().run()
        assert res.finished

    def test_wait_does_not_trip_stall_detector(self):
        class Slow(Actor):
            def run(self):
                yield from self.wait(200)
                yield from self.send("out", 1)

        g = DataflowGraph("t")
        s = g.add_actor(Slow("slow"))
        snk = g.add_actor(ListSink("snk", count=1))
        g.connect(s, "out", snk, "in")
        res = g.build_simulator(stall_limit=1000).run()
        assert res.finished


class TestValidation:
    def test_duplicate_actor_names_rejected(self):
        a1, a2 = ArraySource("x", [1]), ListSink("x", count=1)
        ch = Channel("c", 2)
        a1.bind_output("out", ch)
        a2.bind_input("in", ch)
        with pytest.raises(SimulationError):
            Simulator([a1, a2], [ch])

    def test_unregistered_channel_rejected(self):
        a1, a2 = ArraySource("a", [1]), ListSink("b", count=1)
        ch = Channel("c", 2)
        a1.bind_output("out", ch)
        a2.bind_input("in", ch)
        with pytest.raises(SimulationError):
            Simulator([a1, a2], [])

    def test_actor_now_tracks_cycle(self):
        seen = []

        class Probe(Actor):
            def run(self):
                for _ in range(4):
                    seen.append(self.now)
                    yield

        g = DataflowGraph("t")
        g.add_actor(Probe("p"))
        g.build_simulator().run()
        assert seen == [0, 1, 2, 3]
