"""Unit + integration tests for execution tracing."""

import numpy as np
import pytest

from repro.dataflow import ArraySource, DataflowGraph, ListSink, MapActor, Tracer
from repro.errors import ConfigurationError


def traced_run(n=20, sample_every=1):
    g = DataflowGraph("t", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(n))))
    m = g.add_actor(MapActor("map", lambda v: v + 1))
    snk = g.add_actor(ListSink("snk", count=n))
    g.connect(src, "out", m, "in")
    g.connect(m, "out", snk, "in")
    tracer = Tracer(sample_every=sample_every)
    g.build_simulator(tracer=tracer).run()
    return tracer


class TestRecording:
    def test_samples_every_cycle(self):
        tr = traced_run(10)
        assert tr.cycles == list(range(len(tr.cycles)))
        assert len(tr.activity["src"]) == len(tr.cycles)

    def test_coarse_sampling(self):
        tr = traced_run(20, sample_every=4)
        assert all(c % 4 == 0 for c in tr.cycles)

    def test_invalid_sampling_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_every=0)

    def test_channels_recorded(self):
        tr = traced_run(10)
        assert len(tr.occupancy) == 2


class TestAnalysis:
    def test_source_busy_while_streaming(self):
        tr = traced_run(20)
        assert tr.busy_fraction("src", 0, 20) > 0.9

    def test_unknown_actor_rejected(self):
        tr = traced_run(5)
        with pytest.raises(ConfigurationError):
            tr.busy_fraction("ghost")

    def test_empty_window_rejected(self):
        tr = traced_run(5)
        with pytest.raises(ConfigurationError):
            tr.busy_fraction("src", 10_000, 10_001)

    def test_utilization_covers_all_actors(self):
        tr = traced_run(10)
        assert set(tr.utilization()) == {"src", "map", "snk"}

    def test_concurrently_active_in_steady_state(self):
        tr = traced_run(40)
        active = tr.concurrently_active(threshold=0.6, start=5, end=35)
        assert {"src", "map", "snk"} <= set(active)

    def test_peak_occupancy(self):
        tr = traced_run(10)
        assert all(tr.peak_occupancy(ch) >= 0 for ch in tr.occupancy)


class TestRendering:
    def test_activity_strips(self):
        tr = traced_run(30)
        text = tr.activity_strips(width=20)
        assert "src" in text and "|" in text and "#" in text

    def test_strips_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer().activity_strips()

    def test_vcd_structure(self):
        tr = traced_run(10)
        vcd = tr.to_vcd()
        assert "$enddefinitions" in vcd
        assert "$var wire 16" in vcd
        assert "#0" in vcd

    def test_vcd_only_emits_changes(self):
        tr = traced_run(10)
        vcd = tr.to_vcd()
        # Every timestamped block must contain at least one change line.
        blocks = [b for b in vcd.split("#") if b and b[0].isdigit()]
        for b in blocks:
            assert "b" in b


class TestSteadyStatePipelineClaim:
    def test_all_network_layers_concurrently_active(self, rng):
        """Paper Section IV-C: 'At steady state, all the different layers
        of the network will be concurrently active and computing.'"""
        from repro.core import extract_weights, tiny_design, tiny_model, build_network

        design = tiny_design()
        built = build_network(
            design, extract_weights(design, tiny_model()),
            rng.uniform(0, 1, (8, 1, 8, 8)).astype(np.float32),
        )
        tracer = Tracer()
        built.run(tracer=tracer)
        # Steady window: skip fill and drain.
        total = built.result.cycles
        start, end = total // 3, 2 * total // 3
        util = tracer.utilization(start, end)
        layer_cores = [n for n in util if ".core" in n or ".win" in n]
        busy_layers = [n for n in layer_cores if util[n] > 0.3]
        # Every pipeline stage family is represented among the busy actors.
        assert any(n.startswith("conv1") for n in busy_layers)
        assert any(n.startswith("pool1") for n in busy_layers)
        assert any(n.startswith("fc1") for n in busy_layers)


class TestVcdScale:
    def test_vcd_idents_unique_beyond_94_signals(self):
        # The VCD identifier alphabet has 94 symbols; >94 channels need
        # multi-character identifiers, which must stay unique.
        tr = Tracer()
        tr.cycles = [0, 1]
        tr.occupancy = {f"ch{i}": [0, i % 3] for i in range(200)}
        tr.activity = {"a": [1, 1]}
        vcd = tr.to_vcd()
        idents = [
            line.split()[3]
            for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(idents) == 200
        assert len(set(idents)) == 200
