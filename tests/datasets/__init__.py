"""Test package."""
