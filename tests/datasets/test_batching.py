"""Unit tests for splitting and batching."""

import numpy as np
import pytest

from repro.datasets import iterate_batches, train_test_split
from repro.errors import DatasetError


def data(n=50):
    x = np.arange(n * 2, dtype=np.float32).reshape(n, 2)
    y = np.arange(n) % 3
    return x, y


class TestSplit:
    def test_sizes(self):
        x, y = data(50)
        xt, yt, xv, yv = train_test_split(x, y, 0.2, seed=0)
        assert len(xv) == 10 and len(xt) == 40

    def test_partition_is_exact(self):
        x, y = data(30)
        xt, yt, xv, yv = train_test_split(x, y, 0.3, seed=0)
        all_rows = np.concatenate([xt, xv])
        assert sorted(map(tuple, all_rows)) == sorted(map(tuple, x))

    def test_labels_follow_rows(self):
        x, y = data(30)
        xt, yt, _, _ = train_test_split(x, y, 0.2, seed=0)
        # Row i of x is [2i, 2i+1], its label is i % 3.
        for row, label in zip(xt, yt):
            assert label == (int(row[0]) // 2) % 3

    def test_deterministic(self):
        x, y = data()
        a = train_test_split(x, y, 0.2, seed=5)
        b = train_test_split(x, y, 0.2, seed=5)
        assert all(np.array_equal(p, q) for p, q in zip(a, b))

    def test_invalid_fraction_rejected(self):
        x, y = data()
        with pytest.raises(DatasetError):
            train_test_split(x, y, 0.0)
        with pytest.raises(DatasetError):
            train_test_split(x, y, 1.0)

    def test_mismatch_rejected(self):
        x, y = data()
        with pytest.raises(DatasetError):
            train_test_split(x, y[:-1], 0.2)


class TestBatches:
    def test_covers_all_samples(self):
        x, y = data(25)
        seen = sum(len(xb) for xb, _ in iterate_batches(x, y, 8))
        assert seen == 25

    def test_last_batch_smaller(self):
        x, y = data(25)
        sizes = [len(xb) for xb, _ in iterate_batches(x, y, 8)]
        assert sizes == [8, 8, 8, 1]

    def test_no_shuffle_preserves_order(self):
        x, y = data(10)
        xb, yb = next(iterate_batches(x, y, 4, shuffle=False))
        assert np.array_equal(xb, x[:4])

    def test_invalid_batch_size_rejected(self):
        x, y = data()
        with pytest.raises(DatasetError):
            list(iterate_batches(x, y, 0))
