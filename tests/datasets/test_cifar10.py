"""Unit tests for the synthetic CIFAR-10-like generator."""

import numpy as np
import pytest

from repro.datasets import generate_cifar10
from repro.datasets.cifar10 import render_sample
from repro.errors import DatasetError


class TestRenderSample:
    def test_shape_and_range(self, rng):
        img = render_sample(4, rng)
        assert img.shape == (3, 32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_invalid_label_rejected(self, rng):
        with pytest.raises(DatasetError):
            render_sample(10, rng)

    def test_all_classes_render(self, rng):
        for label in range(10):
            img = render_sample(label, rng)
            assert np.isfinite(img).all()

    def test_samples_vary_within_class(self):
        rng = np.random.default_rng(0)
        a = render_sample(0, rng)
        b = render_sample(0, rng)
        assert not np.array_equal(a, b)


class TestGenerate:
    def test_shapes(self):
        x, y = generate_cifar10(20, seed=1)
        assert x.shape == (20, 3, 32, 32)
        assert y.shape == (20,)

    def test_balanced(self):
        _, y = generate_cifar10(50, seed=1)
        assert np.array_equal(np.bincount(y), np.full(10, 5))

    def test_deterministic(self):
        x1, _ = generate_cifar10(5, seed=9)
        x2, _ = generate_cifar10(5, seed=9)
        assert np.array_equal(x1, x2)

    def test_zero_samples_rejected(self):
        with pytest.raises(DatasetError):
            generate_cifar10(0)

    def test_classes_statistically_distinct(self):
        # Mean per-class images should differ: the classes are separable.
        x, y = generate_cifar10(200, seed=2)
        means = np.stack([x[y == c].mean(axis=0) for c in range(10)])
        dists = []
        for i in range(10):
            for j in range(i + 1, 10):
                dists.append(np.abs(means[i] - means[j]).mean())
        assert min(dists) > 0.01
