"""Unit tests for the synthetic USPS generator."""

import numpy as np
import pytest

from repro.datasets import generate_usps, render_digit
from repro.errors import DatasetError


class TestRenderDigit:
    def test_shape_and_range(self, rng):
        img = render_digit(3, rng)
        assert img.shape == (16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_invalid_digit_rejected(self, rng):
        with pytest.raises(DatasetError):
            render_digit(10, rng)

    def test_canonical_prototypes_distinct(self):
        rng = np.random.default_rng(0)
        protos = [render_digit(d, rng, jitter=0.0) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(protos[i] - protos[j]).max() > 0.3

    def test_jitter_creates_variation(self):
        rng = np.random.default_rng(0)
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert not np.array_equal(a, b)

    def test_one_has_fewer_ink_than_eight(self):
        rng = np.random.default_rng(0)
        one = render_digit(1, rng, jitter=0.0).sum()
        eight = render_digit(8, rng, jitter=0.0).sum()
        assert one < eight


class TestGenerate:
    def test_shapes_and_dtype(self):
        x, y = generate_usps(30, seed=1)
        assert x.shape == (30, 1, 16, 16)
        assert x.dtype == np.float32
        assert y.shape == (30,) and y.dtype == np.int64

    def test_balanced_classes(self):
        _, y = generate_usps(100, seed=1)
        assert np.array_equal(np.bincount(y), np.full(10, 10))

    def test_deterministic_per_seed(self):
        x1, y1 = generate_usps(10, seed=7)
        x2, y2 = generate_usps(10, seed=7)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_seeds_differ(self):
        x1, _ = generate_usps(10, seed=1)
        x2, _ = generate_usps(10, seed=2)
        assert not np.array_equal(x1, x2)

    def test_zero_samples_rejected(self):
        with pytest.raises(DatasetError):
            generate_usps(0)

    def test_trainable_to_high_accuracy(self):
        # The dataset must actually support the paper's TC1 workflow.
        from repro.nn import train_classifier
        from repro.core import usps_model

        x, y = generate_usps(300, seed=3)
        net = usps_model(np.random.default_rng(0))
        res = train_classifier(net, x[:240], y[:240], epochs=6, lr=0.08,
                               x_test=x[240:], y_test=y[240:], seed=0)
        assert res.test_accuracy > 0.8
