"""Test package."""
