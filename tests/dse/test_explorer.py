"""Unit tests for DSE search strategies."""

import pytest

from repro.core import cifar10_design, network_perf, usps_design
from repro.dse import evaluate, exhaustive_search, greedy_optimize
from repro.errors import ResourceError
from repro.fpga import Device
from repro.hls import ResourceVector


class TestEvaluate:
    def test_fields(self):
        c = evaluate(usps_design())
        assert c.interval == 256
        assert c.fits
        assert c.profile[0] == c.interval

    def test_profile_sorted_descending(self):
        c = evaluate(cifar10_design())
        assert list(c.profile) == sorted(c.profile, reverse=True)


class TestExhaustive:
    def test_usps_best_matches_paper_throughput(self):
        # The paper's hand-picked config reaches the DMA bound; exhaustive
        # search can do no better (and must do no worse).
        res = exhaustive_search(usps_design())
        assert res.best.interval == network_perf(usps_design()).interval == 256

    def test_evaluated_counts_whole_space(self):
        res = exhaustive_search(usps_design())
        assert res.evaluated == 250

    def test_impossible_device_raises(self):
        matchbox = Device("matchbox", "toy", ResourceVector(ff=1, lut=1, bram=0, dsp=0))
        with pytest.raises(ResourceError):
            exhaustive_search(usps_design(), device=matchbox)


class TestGreedy:
    def test_usps_reaches_dma_bound(self):
        res = greedy_optimize(usps_design())
        assert res.best.interval == 256

    def test_cifar_improves_over_paper_config(self):
        # Extension result: DSE finds a faster TC2 than the paper's
        # all-single-port configuration, still fitting the device.
        res = greedy_optimize(cifar10_design())
        assert res.best.interval < network_perf(cifar10_design()).interval
        assert res.best.fits

    def test_greedy_never_worse_than_start(self):
        from repro.core import single_port_design

        start = evaluate(single_port_design(cifar10_design()))
        res = greedy_optimize(cifar10_design())
        assert res.best.interval <= start.interval

    def test_greedy_matches_exhaustive_on_usps(self):
        g = greedy_optimize(usps_design()).best.interval
        e = exhaustive_search(usps_design()).best.interval
        assert g == e

    def test_history_monotone(self):
        res = greedy_optimize(cifar10_design())
        profiles = [c.profile for c in res.history]
        assert profiles == sorted(profiles, reverse=True)

    def test_impossible_device_raises(self):
        matchbox = Device("matchbox", "toy", ResourceVector(ff=1, lut=1, bram=0, dsp=0))
        with pytest.raises(ResourceError):
            greedy_optimize(usps_design(), device=matchbox)


class TestOptimizeForTarget:
    def test_relaxed_target_gets_single_port(self):
        from repro.dse import optimize_for_target

        # A very loose target: the cheapest (single-port) config wins.
        res = optimize_for_target(usps_design(), target_interval=10_000)
        assert res.best.ports == ((1, 1), (1, 1), (1, 1), (1, 1))

    def test_tight_target_buys_parallelism(self):
        from repro.dse import optimize_for_target

        loose = optimize_for_target(usps_design(), target_interval=10_000)
        tight = optimize_for_target(usps_design(), target_interval=256)
        assert tight.best.interval <= 256
        assert tight.best.dsp > loose.best.dsp

    def test_cheaper_than_fastest_when_target_allows(self):
        from repro.dse import exhaustive_search, optimize_for_target

        fastest = exhaustive_search(usps_design()).best
        thrifty = optimize_for_target(usps_design(), target_interval=864)
        assert thrifty.best.dsp <= fastest.dsp

    def test_impossible_target_raises(self):
        from repro.dse import optimize_for_target

        with pytest.raises(ResourceError):
            optimize_for_target(usps_design(), target_interval=1)

    def test_invalid_target_rejected(self):
        from repro.dse import optimize_for_target

        with pytest.raises(ResourceError):
            optimize_for_target(usps_design(), target_interval=0)
