"""Unit tests for Pareto-front extraction."""

import pytest

from repro.core import usps_design
from repro.dse import apply_configuration, evaluate, iter_configurations, pareto_front
from repro.errors import ConfigurationError


def usps_candidates(limit=60):
    d = usps_design()
    return [
        evaluate(apply_configuration(d, c))
        for c in iter_configurations(d, limit=limit)
    ]


class TestParetoFront:
    def test_front_nonempty_subset(self):
        cands = usps_candidates()
        front = pareto_front(cands)
        assert front
        ids = {id(c) for c in cands}
        assert all(id(c) in ids for c in front)

    def test_no_dominated_points_on_front(self):
        cands = usps_candidates()
        front = pareto_front(cands)
        for f in front:
            for c in cands:
                dominates = (
                    c.interval <= f.interval and c.dsp <= f.dsp
                    and (c.interval < f.interval or c.dsp < f.dsp)
                )
                assert not dominates

    def test_front_sorted_by_interval(self):
        front = pareto_front(usps_candidates())
        intervals = [c.interval for c in front]
        assert intervals == sorted(intervals)

    def test_front_tradeoff_monotone(self):
        # Along the front, faster must mean more DSP.
        front = pareto_front(usps_candidates(limit=250))
        dsps = [c.dsp for c in front]
        assert dsps == sorted(dsps, reverse=True)

    def test_single_candidate(self):
        cands = usps_candidates(limit=1)
        assert pareto_front(cands) == cands

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_front([])
