"""Unit tests for design-space enumeration."""

import pytest

from repro.core import tiny_design, usps_design
from repro.dse import apply_configuration, iter_configurations, space_size
from repro.errors import ConfigurationError


class TestEnumeration:
    def test_all_configurations_valid(self):
        d = usps_design()
        for config in iter_configurations(d):
            nd = apply_configuration(d, config)  # raises if invalid
            assert nd.n_layers == d.n_layers

    def test_space_contains_single_port(self):
        d = usps_design()
        configs = set(iter_configurations(d))
        assert ((1, 1),) * 4 in configs

    def test_space_contains_paper_config(self):
        d = usps_design()
        paper = tuple((s.in_ports, s.out_ports) for s in d.specs)
        assert paper in set(iter_configurations(d))

    def test_adjacent_divisibility_enforced(self):
        d = usps_design()
        for config in iter_configurations(d):
            prev_out = 1
            for (i, o) in config:
                assert max(prev_out, i) % min(prev_out, i) == 0
                prev_out = o

    def test_limit_caps_yields(self):
        d = usps_design()
        assert sum(1 for _ in iter_configurations(d, limit=5)) == 5

    def test_space_size(self):
        assert space_size(usps_design()) == 250

    def test_apply_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_configuration(usps_design(), ((1, 1),))

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            list(iter_configurations(tiny_design(), limit=0))
