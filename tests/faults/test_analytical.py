"""The analytical throttled-DMA model vs full faulted simulation.

The component model replays exact channel-commit semantics, so on
phase-free scenarios (period=1, the chaos preset) its predicted faulted
interval must match the measured one *exactly*; phase-dependent
scenarios must land within a few percent.
"""

import pytest

from repro.core import network_perf, tiny_design, usps_design
from repro.errors import ConfigurationError
from repro.faults import (
    ChannelJitter,
    DmaThrottle,
    FaultScenario,
    load_scenario,
    run_design,
    throttled_link_rate,
    throttled_perf,
)


def measured_steady_interval(design, scenario, images=10, seed=3):
    outcome = run_design(design, seed=seed, images=images, scenario=scenario)
    assert outcome.finished
    cc = outcome.built.image_completion_cycles()
    tail = [b - a for a, b in zip(cc[-5:-1], cc[-4:])]
    return sum(tail) / len(tail)


def throttle(period, burst):
    return FaultScenario(
        "t", (DmaThrottle(channels="dma_in.*", period=period, burst=burst),)
    )


class TestLinkRate:
    def test_clean_link_is_one_cycle_per_word(self):
        # burst must be >= 1 by spec; a period so long it never fires
        # within the measured window is the clean baseline.
        assert throttled_link_rate(10**9, 1, beat=1) == pytest.approx(1.0)

    def test_capacity_absorbs_small_bursts(self):
        # period=1, burst<=2 on a capacity-4 FIFO: the batch commit
        # catches up completely; the link still streams 1 word/cycle.
        assert throttled_link_rate(1, 2, beat=1, capacity=4) == pytest.approx(
            1.0
        )

    def test_period1_closed_form(self):
        # Past the absorption point the recurrence settles at
        # (burst + 2) / capacity cycles per word.
        for burst in (8, 16, 24):
            assert throttled_link_rate(1, burst, beat=1, capacity=4) == (
                pytest.approx((burst + 2) / 4, rel=0.01)
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            throttled_link_rate(1, 4, capacity=0)
        with pytest.raises(ConfigurationError):
            throttled_link_rate(1, 4, beat=0)


class TestThrottledPerfExact:
    @pytest.mark.parametrize("design_fn", [tiny_design, usps_design])
    def test_chaos_preset_prediction_is_exact(self, design_fn):
        design = design_fn()
        scenario = load_scenario("dma-throttle")
        pred = throttled_perf(design, scenario)
        meas = measured_steady_interval(design, scenario)
        assert pred.interval == meas

    @pytest.mark.parametrize("period,burst", [(1, 24), (2, 10), (7, 5)])
    def test_predictions_track_simulation(self, period, burst):
        design = usps_design()
        scenario = throttle(period, burst)
        pred = throttled_perf(design, scenario)
        meas = measured_steady_interval(design, scenario)
        assert pred.interval == pytest.approx(meas, rel=0.03)

    def test_degradation_factor(self):
        design = usps_design()
        pred = throttled_perf(design, load_scenario("dma-throttle"))
        perf = network_perf(design)
        assert pred.clean_interval == perf.interval
        assert pred.degradation == pred.interval / perf.interval
        assert pred.degradation > 1.0


class TestScenarioValidation:
    def test_rejects_scenario_without_throttle(self):
        scenario = FaultScenario("j", (ChannelJitter(),))
        with pytest.raises(ConfigurationError, match="DmaThrottle"):
            throttled_perf(usps_design(), scenario)

    def test_rejects_non_dma_in_target(self):
        scenario = FaultScenario(
            "x", (DmaThrottle(channels="conv*", period=1, burst=4),)
        )
        with pytest.raises(ConfigurationError, match="DMA input"):
            throttled_perf(usps_design(), scenario)

    def test_preset_exists_and_is_timing_only(self):
        scenario = load_scenario("dma-throttle")
        assert scenario.timing_only()
        (spec,) = scenario.faults
        assert spec.period == 1  # phase-free: model is seed-exact
