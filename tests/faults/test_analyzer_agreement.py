"""Cross-validation: static BUFFER.FULL errors vs simulated deadlocks.

Invariant 2 of DESIGN.md section 10: shrinking a literal filter-chain
FIFO below the sizing model's minimum must (a) raise a BUFFER.FULL error
in the static verifier and (b) deadlock the simulator on the *same
channel*. Each side checks the other — a diagnostic with no matching
deadlock means the verifier cries wolf; a deadlock with no matching
diagnostic means the verifier misses real bugs.
"""

import pytest

from repro.analysis import analyze_graph, infer_depth_plan, probe_tight_certificate
from repro.core import tiny_design
from repro.core.builder import build_network, random_weights
from repro.core.models import cifar10_design, usps_design
from repro.dataflow.deadlock import match_deadlock_diagnostics
from repro.errors import DeadlockError
from repro.faults import (
    FaultScenario,
    FifoShrink,
    faultsim,
    resolve_shrink,
    run_design,
)
from repro.sst.sizing import deadlock_shrink_targets
from repro.sst.window import WindowSpec

SHRINK = FaultScenario("shrink", (FifoShrink(),))

DESIGNS = [
    pytest.param(tiny_design, id="tiny"),
    pytest.param(usps_design, id="usps"),
    pytest.param(cifar10_design, id="cifar10"),
]


class TestSizingTargets:
    def test_targets_require_depth_beyond_tap_slack(self):
        # A 3x3 window over a width-8 row: line FIFOs have depth ~w-kw,
        # far above the tap slack; inter-tap FIFOs (depth 1) are excluded.
        spec = WindowSpec(kh=3, kw=3)
        targets = dict(deadlock_shrink_targets(spec, w=8))
        from repro.sst.filter_chain import fifo_depths

        _, wp = spec.padded_shape(1, 8)
        depths = fifo_depths(spec, wp, 1)
        tap_cap = 4  # max(4, group + 1) with group=1
        for i, d in enumerate(depths):
            if d >= tap_cap + 2:
                assert targets[i] == 1
            else:
                assert i not in targets

    def test_tiny_window_has_no_targets(self):
        # 2x2 over width 4: every FIFO depth is within the tap slack, so
        # no capacity-1 shrink provably deadlocks.
        spec = WindowSpec(kh=2, kw=2)
        assert deadlock_shrink_targets(spec, w=4) == []


class TestAgreement:
    @pytest.mark.parametrize("factory", DESIGNS)
    def test_shrink_deadlock_matches_static_error(self, factory):
        design = factory()
        outcome = run_design(
            design, seed=0, images=1, scenario=SHRINK,
            memory_system="literal", stall_limit=5_000,
        )
        # (a) the simulator deadlocks ...
        assert outcome.deadlock is not None, (
            f"capacity-1 shrink of {sorted(outcome.armed.shrunk)} "
            f"did not deadlock {design.name}"
        )
        assert isinstance(outcome.deadlock, DeadlockError)
        shrunk = sorted(outcome.armed.shrunk)
        assert len(shrunk) == 1
        # (b) ... the verifier flags the shrunk channel as an error ...
        report = analyze_graph(outcome.built.graph, design)
        assert not report.ok
        assert any(shrunk[0] in d.message for d in report.errors)
        # (c) ... and both name the same channel.
        matches = match_deadlock_diagnostics(outcome.deadlock, report)
        matched = {name for name, _ in matches}
        assert shrunk[0] in matched, (
            f"deadlock blocked on {outcome.deadlock.blocked_channel_names()} "
            f"but the verifier flagged {shrunk[0]}"
        )

    def test_faultsim_shrink_verdict(self):
        report = faultsim(tiny_design(), SHRINK, seed=0, images=1)
        assert report["memory_system"] == "literal"
        assert report["verdict"] == "deadlock_matches_analysis"
        assert report["ok"] is True
        assert report["matched_channels"] == report["shrunk_channels"]
        assert report["analysis_flagged"]

    def test_resolve_shrink_picks_provable_target(self):
        design = tiny_design()
        weights = random_weights(design, seed=0)
        import numpy as np

        batch = np.zeros((1,) + design.input_shape, dtype=np.float32)
        built = build_network(design, weights, batch, memory_system="literal")
        resolved = resolve_shrink(SHRINK, built.graph)
        target = resolved.faults[0].channels
        assert target in built.graph.channels
        ch = built.graph.channels[target]
        base = target.rsplit(".fifo", 1)[0]
        tap_cap = built.graph.channels[f"{base}.tap0"].capacity
        # The chosen FIFO's depth exceeds the downstream tap slack.
        assert ch.capacity - 1 >= tap_cap + 2

    def test_clean_literal_run_has_no_buffer_errors(self):
        # Control: without the shrink, the verifier is quiet and the
        # simulator finishes — neither side reports a phantom problem.
        design = tiny_design()
        outcome = run_design(
            design, seed=0, images=1, memory_system="literal",
        )
        assert outcome.finished and outcome.deadlock is None
        report = analyze_graph(outcome.built.graph, design)
        assert not any(d.rule == "BUFFER.FULL" for d in report.errors)


class TestProverAgreement:
    """The PR 3 invariant, now driven by the depth prover.

    ``deadlock_shrink_targets`` hand-picks channels where capacity 1
    provably jams; the prover goes further and certifies the *minimal*
    depth of every channel. Probing a tight certificate at depth-1 must
    reproduce the same three-way agreement: simulator deadlock, static
    BUFFER.DEPTH_UNDERSIZED error, and both naming the same channel.
    """

    @pytest.mark.parametrize("factory", DESIGNS)
    def test_prover_probe_agreement(self, factory):
        design = factory()
        outcome = run_design(
            design, seed=0, images=1, memory_system="literal",
        )
        plan = infer_depth_plan(outcome.built.graph)
        tight = plan.tight_channels()
        assert tight, f"{design.name}: prover found no tight certificates"
        # A spread of targets per design; the CI shrink-suite probes all.
        for channel in tight[:4]:
            probe = probe_tight_certificate(design, plan, channel)
            assert probe.ok, (
                f"{design.name}/{channel}: deadlocked={probe.deadlocked} "
                f"blamed={probe.blamed} (blocked {probe.blocked}) "
                f"flagged={probe.flagged} matched={probe.matched}"
            )

    def test_prover_floors_cover_sizing_targets(self):
        # Every hand-picked deadlock_shrink_targets channel must come out
        # of the prover as a tight certificate: the prover supersedes the
        # PR 3 target list, it does not shrink it.
        design = tiny_design()
        outcome = run_design(
            design, seed=0, images=1, memory_system="literal",
        )
        plan = infer_depth_plan(outcome.built.graph)
        tight = set(plan.tight_channels())
        for p in design.placements:
            spec = p.spec
            if not hasattr(spec, "window"):
                continue
            targets = deadlock_shrink_targets(
                spec.window, p.in_shape[2], spec.in_group
            )
            for port in range(spec.in_ports):
                for i, _cap in targets:
                    assert f"{spec.name}.win{port}.fifo{i}" in tight
