"""Unit tests for the fault injectors, scenarios and the arming step.

Determinism is the property everything else rests on: every injector
draws from an RNG keyed only by (seed, target name), so fault behaviour
must be identical across processes, arming orders and schedulers. These
tests pin that down at the unit level; the scheduler-equivalence and
latency-insensitivity suites check the same property end to end.
"""

import pytest

from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError
from repro.faults import (
    ActorSlowdown,
    ActorStallPlan,
    BeatCorruption,
    ChannelJitter,
    CompositeFault,
    CorruptionFault,
    DmaThrottle,
    FaultScenario,
    FifoShrink,
    JitterFault,
    ThrottleFault,
    arm_faults,
    disarm_faults,
    load_scenario,
    preset_scenarios,
    target_rng,
)


def small_graph():
    g = DataflowGraph("g", default_capacity=4)
    src = g.add_actor(ArraySource("src", list(range(10))))
    snk = g.add_actor(ListSink("snk", count=10))
    g.connect(src, "out", snk, "in")
    return g


class TestTargetRng:
    def test_same_key_same_stream(self):
        a = [target_rng(7, "jitter:x").random() for _ in range(5)]
        b = [target_rng(7, "jitter:x").random() for _ in range(5)]
        assert a == b

    def test_different_name_different_stream(self):
        a = target_rng(7, "jitter:x").random()
        b = target_rng(7, "jitter:y").random()
        assert a != b

    def test_different_seed_different_stream(self):
        a = target_rng(7, "jitter:x").random()
        b = target_rng(8, "jitter:x").random()
        assert a != b


class TestChannelFaults:
    def run_pattern(self, fault, attempts=40):
        """Commit-attempt outcome sequence: True=commit, False=held."""
        out = []
        staged = [1]
        for _ in range(attempts):
            out.append(fault.on_commit(None, staged))
        return out

    def test_jitter_deterministic(self):
        a = JitterFault(target_rng(0, "jitter:c"), 0.5, 3)
        b = JitterFault(target_rng(0, "jitter:c"), 0.5, 3)
        assert self.run_pattern(a) == self.run_pattern(b)
        assert a.holds == b.holds

    def test_jitter_probability_zero_never_holds(self):
        f = JitterFault(target_rng(0, "jitter:c"), 0.0, 3)
        assert all(self.run_pattern(f))
        assert f.holds == 0

    def test_jitter_probability_one_always_holds(self):
        f = JitterFault(target_rng(0, "jitter:c"), 1.0, 3)
        pattern = self.run_pattern(f)
        assert not pattern[0] or pattern[1] is False  # first batch is held
        assert f.holds > 0
        # Hold lengths are bounded by max_delay: never more than 3
        # consecutive False entries.
        run = 0
        for ok in pattern:
            run = 0 if ok else run + 1
            assert run <= 3

    def test_throttle_period_pattern(self):
        f = ThrottleFault(target_rng(3, "dma:c"), period=4, burst=2)
        pattern = self.run_pattern(f, attempts=60)
        # Exactly every 4th *batch* stalls for 2 cycles: commits between
        # two stall bursts come in groups of 3.
        commits = stalls = 0
        for ok in pattern:
            if ok:
                commits += 1
            else:
                stalls += 1
        assert stalls == 2 * (f.holds // 2)
        assert f.holds == stalls
        assert commits > 0 and stalls > 0

    def test_corruption_mutates_numeric_only(self):
        f = CorruptionFault(target_rng(0, "corrupt:c"), 1.0, 1.0)
        staged = [("window", 0, 1)]  # non-numeric control token
        assert f.on_commit(None, staged)
        assert staged == [("window", 0, 1)]
        assert f.hits == 0
        staged = [2.5]
        assert f.on_commit(None, staged)  # never holds
        assert staged[0] != 2.5
        assert f.hits == 1

    def test_composite_first_hold_wins(self):
        always_hold = JitterFault(target_rng(0, "jitter:c"), 1.0, 1)
        counting = CorruptionFault(target_rng(0, "corrupt:c"), 1.0, 1.0)
        comp = CompositeFault([always_hold, counting])
        staged = [1.0]
        held = not comp.on_commit(None, staged)
        if held:
            # Later faults were not consulted while the first holds.
            assert counting.hits == 0


class TestStallPlan:
    def make_plan(self):
        plan = ActorStallPlan()
        plan.add("core", target_rng(5, "slowdown:core"), mean_gap=10, max_stall=4)
        return plan

    def test_unfaulted_actor_passthrough(self):
        plan = self.make_plan()
        assert plan.free_cycle("other", 123) == 123
        assert plan.actor_names == ["core"]

    def test_free_cycle_is_pure_function_of_cycle(self):
        # Lock-step queries every cycle; the event engine only at
        # resumption cycles. Both must see the same stall windows.
        dense = self.make_plan()
        dense_vals = [dense.free_cycle("core", c) for c in range(200)]
        sparse = self.make_plan()
        for c in (150, 40, 199, 0):  # out-of-order, sparse queries
            assert sparse.free_cycle("core", c) == dense_vals[c]

    def test_free_cycle_never_in_a_window(self):
        plan = self.make_plan()
        for c in range(150):
            w = plan.free_cycle("core", c)
            assert w >= c
            if w > c:
                # The reported wake cycle is itself free.
                assert plan.free_cycle("core", w) == w


class TestScenarios:
    def test_presets_round_trip_json(self):
        for name, sc in preset_scenarios().items():
            again = FaultScenario.from_json(sc.to_json())
            assert again == sc, name

    def test_timing_only_classification(self):
        presets = preset_scenarios()
        assert presets["jitter"].timing_only()
        assert presets["dma"].timing_only()
        assert presets["slowdown"].timing_only()
        assert presets["storm"].timing_only()
        assert not presets["corrupt"].timing_only()
        assert not presets["shrink"].timing_only()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelJitter(probability=1.5)
        with pytest.raises(ConfigurationError):
            ChannelJitter(max_delay=0)
        with pytest.raises(ConfigurationError):
            DmaThrottle(period=0)
        with pytest.raises(ConfigurationError):
            ActorSlowdown(mean_gap=0)
        with pytest.raises(ConfigurationError):
            FifoShrink(channels="x", capacity=0)
        with pytest.raises(ConfigurationError):
            BeatCorruption(probability=-0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultScenario("bad", ("not a fault",))
        with pytest.raises(ConfigurationError):
            FaultScenario.from_dict(
                {"name": "bad", "faults": [{"kind": "gamma-ray"}]}
            )

    def test_load_scenario_preset_and_file(self, tmp_path):
        assert load_scenario("jitter").name == "jitter"
        p = tmp_path / "sc.json"
        p.write_text(
            FaultScenario("mine", (ChannelJitter(probability=0.1),)).to_json()
        )
        sc = load_scenario(str(p))
        assert sc.name == "mine"
        assert sc.faults[0].probability == 0.1
        with pytest.raises(ConfigurationError):
            load_scenario("no-such-scenario")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_scenario(str(bad))


class TestArming:
    def test_arm_installs_and_disarm_removes_hooks(self):
        g = small_graph()
        sc = FaultScenario("s", (ChannelJitter(channels="*"),))
        armed = arm_faults(g, sc, seed=0)
        assert sorted(armed.channel_faults) == sorted(g.channels)
        for name in armed.channel_faults:
            assert g.channels[name]._fault is armed.channel_faults[name]
        disarm_faults(g, armed)
        for ch in g.channels.values():
            assert ch._fault is None

    def test_no_match_is_an_error(self):
        g = small_graph()
        for sc in (
            FaultScenario("s", (ChannelJitter(channels="nope.*"),)),
            FaultScenario("s", (ActorSlowdown(actors="nope"),)),
            FaultScenario("s", (FifoShrink(channels="nope.*", capacity=1),)),
        ):
            with pytest.raises(ConfigurationError):
                arm_faults(g, sc, seed=0)

    def test_auto_shrink_must_be_resolved(self):
        g = small_graph()
        with pytest.raises(ConfigurationError, match="resolve"):
            arm_faults(g, FaultScenario("s", (FifoShrink(),)), seed=0)

    def test_shrink_refuses_occupied_channel(self):
        g = small_graph()
        name = next(iter(g.channels))
        ch = g.channels[name]
        ch.push(1)
        ch.begin_cycle()  # commit the staged beat
        sc = FaultScenario("s", (FifoShrink(channels=name, capacity=1),))
        with pytest.raises(ConfigurationError, match="already holds"):
            arm_faults(g, sc, seed=0)

    def test_shrink_records_and_restores_capacity(self):
        g = small_graph()
        name = next(iter(g.channels))
        old = g.channels[name].capacity
        sc = FaultScenario("s", (FifoShrink(channels=name, capacity=1),))
        armed = arm_faults(g, sc, seed=0)
        assert g.channels[name].capacity == 1
        assert armed.shrunk[name] == (old, 1)
        disarm_faults(g, armed)
        assert g.channels[name].capacity == old

    def test_composite_when_specs_overlap(self):
        g = small_graph()
        sc = FaultScenario(
            "s", (ChannelJitter(channels="*"), DmaThrottle(channels="*"))
        )
        armed = arm_faults(g, sc, seed=0)
        assert all(
            isinstance(f, CompositeFault)
            for f in armed.channel_faults.values()
        )
        assert armed.describe()["channels_faulted"] == sorted(g.channels)

    def test_armed_runs_still_complete(self):
        # A faulted primitive graph still drains; holds were injected.
        g = small_graph()
        snk = g.actors["snk"]
        armed = arm_faults(
            g,
            FaultScenario("s", (ChannelJitter(probability=1.0, max_delay=3),)),
            seed=1,
        )
        clean = small_graph()
        clean_snk = clean.actors["snk"]
        res_clean = clean.build_simulator().run()
        sim = g.build_simulator()
        sim.faults = armed
        res = sim.run()
        assert res.finished
        assert list(snk.received) == list(clean_snk.received)
        assert res.cycles > res_clean.cycles
        assert armed.hold_cycles() > 0
