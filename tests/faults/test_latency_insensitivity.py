"""Property test: timing faults never change any design's outputs.

A correctly buffered elaboration is a Kahn network with bounded FIFOs —
channel latencies and actor stall windows may reshuffle *when* beats
move, but the value streams are determined by the dataflow alone. So for
ANY valid design Hypothesis can dream up, a run under a seeded timing
fault scenario must be bit-identical to the clean run, under both
schedulers. This is invariant 1 of DESIGN.md section 10 stated over the
whole design space rather than the zoo.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import random_weights
from repro.core.builder import build_network
from repro.faults import (
    ActorSlowdown,
    ChannelJitter,
    DmaThrottle,
    FaultScenario,
    arm_faults,
    output_digest,
)
from tests.strategies import small_designs

_SETTINGS = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One representative per timing fault family, plus the combination.
_SCENARIOS = [
    FaultScenario("jitter", (ChannelJitter(probability=0.4, max_delay=3),)),
    FaultScenario("dma", (DmaThrottle(channels="*", period=5, burst=4),)),
    FaultScenario("slowdown", (ActorSlowdown(mean_gap=20, max_stall=5),)),
    FaultScenario(
        "storm",
        (
            ChannelJitter(probability=0.3, max_delay=2),
            ActorSlowdown(mean_gap=30, max_stall=4),
        ),
    ),
]


def run_once(design, seed, scenario, scheduler):
    """(cycles, digest) of one clean or faulted simulation."""
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    batch = rng.uniform(0, 1, (2,) + design.input_shape).astype(np.float32)
    built = build_network(design, weights, batch)
    armed = None
    if scenario is not None:
        armed = arm_faults(built.graph, scenario, seed)
    sim = built.graph.build_simulator(stall_limit=20_000, scheduler=scheduler)
    sim.faults = armed
    result = sim.run()
    assert result.finished
    built.result = result
    return result.cycles, output_digest(built.outputs())


class TestLatencyInsensitivity:
    @_SETTINGS
    @given(
        design=small_designs(),
        seed=st.integers(0, 2**16),
        scenario_idx=st.integers(0, len(_SCENARIOS) - 1),
    )
    def test_timing_faults_preserve_outputs(self, design, seed, scenario_idx):
        scenario = _SCENARIOS[scenario_idx]
        _, clean_digest = run_once(design, seed, None, "event")
        for scheduler in ("event", "lockstep"):
            cycles, digest = run_once(design, seed, scenario, scheduler)
            assert digest == clean_digest, (
                f"{scenario.name} under {scheduler} changed the outputs of\n"
                f"{design.block_design()}"
            )

    @_SETTINGS
    @given(design=small_designs(), seed=st.integers(0, 2**16))
    def test_fault_cycles_agree_across_schedulers(self, design, seed):
        # The same seeded scenario must cost the same number of cycles
        # under both engines — fault RNG draws are consult-ordered, not
        # scheduler-ordered.
        scenario = _SCENARIOS[0]
        a = run_once(design, seed, scenario, "event")
        b = run_once(design, seed, scenario, "lockstep")
        assert a == b
