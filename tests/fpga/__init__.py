"""Test package."""
