"""Unit tests for device models."""

import pytest

from repro.errors import ResourceError
from repro.fpga import STRATIX_V_D5, XC7VX485T, get_device
from repro.hls import ResourceVector


class TestVirtex7:
    def test_published_budget(self):
        r = XC7VX485T.resources
        assert (r.ff, r.lut, r.bram, r.dsp) == (607_200, 303_600, 1_030, 2_800)

    def test_check_fit_passes_within(self):
        XC7VX485T.check_fit(ResourceVector(ff=1000, lut=1000, bram=1, dsp=10))

    def test_check_fit_raises_over(self):
        with pytest.raises(ResourceError):
            XC7VX485T.check_fit(ResourceVector(dsp=2801))

    def test_utilization_row(self):
        u = XC7VX485T.utilization(ResourceVector(dsp=1400))
        assert u["dsp"] == pytest.approx(0.5)


class TestLookup:
    def test_get_device(self):
        assert get_device("xc7vx485t") is XC7VX485T
        assert get_device("stratix-v-d5") is STRATIX_V_D5

    def test_unknown_rejected(self):
        with pytest.raises(ResourceError):
            get_device("zynq")

    def test_families(self):
        assert XC7VX485T.family.startswith("xilinx")
        assert STRATIX_V_D5.family.startswith("altera")
