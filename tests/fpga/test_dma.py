"""Unit tests for the DMA transfer model."""

import pytest

from repro.config import ClockDomain
from repro.errors import ConfigurationError
from repro.fpga import PAPER_DMA, DmaModel


class TestPaperDma:
    def test_paper_setup_is_one_word_per_cycle(self):
        # 400 MB/s at 100 MHz over a 32-bit datapath = 4 B/cycle = 1 float.
        assert PAPER_DMA.bytes_per_cycle == pytest.approx(4.0)
        assert PAPER_DMA.beat_interval(32) == 1

    def test_transfer_cycles_for_usps_image(self):
        assert PAPER_DMA.transfer_cycles(16 * 16) == 256

    def test_transfer_cycles_for_cifar_image(self):
        assert PAPER_DMA.transfer_cycles(3 * 32 * 32) == 3072


class TestGeneralModel:
    def test_narrow_datapath_slows_wide_words(self):
        dma = DmaModel(datapath_bits=16, bandwidth_bytes_per_s=1e9)
        assert dma.beat_interval(32) == 2

    def test_low_bandwidth_dominates(self):
        dma = DmaModel(datapath_bits=32, bandwidth_bytes_per_s=100e6)
        assert dma.beat_interval(32) == 4  # 1 B/cycle at 100 MHz

    def test_different_clock(self):
        dma = DmaModel(clock=ClockDomain(200e6))
        # Same 400 MB/s at 200 MHz = 2 B/cycle -> 2 cycles per float.
        assert dma.beat_interval(32) == 2

    def test_zero_words(self):
        assert PAPER_DMA.transfer_cycles(0) == 0

    def test_negative_words_rejected(self):
        with pytest.raises(ConfigurationError):
            PAPER_DMA.transfer_cycles(-1)

    def test_fractional_byte_datapath_rejected(self):
        with pytest.raises(ConfigurationError):
            DmaModel(datapath_bits=12)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            DmaModel(bandwidth_bytes_per_s=0)
