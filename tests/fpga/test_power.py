"""Unit tests for the power model and the board wrapper."""

import pytest

from repro.config import PAPER_CLOCK
from repro.errors import ConfigurationError
from repro.fpga import PAPER_POWER, VC707, PowerModel
from repro.hls import ResourceVector


class TestPowerModel:
    def test_static_floor(self):
        assert PAPER_POWER.total_power_w(ResourceVector()) == PAPER_POWER.static_w

    def test_monotone_in_usage(self):
        small = PAPER_POWER.total_power_w(ResourceVector(dsp=100))
        big = PAPER_POWER.total_power_w(ResourceVector(dsp=2000))
        assert big > small

    def test_paper_operating_envelope(self):
        # Both paper designs imply board power in the ~18-28 W range.
        tc1 = ResourceVector(ff=250_000, lut=155_000, bram=36, dsp=1_540)
        tc2 = ResourceVector(ff=375_000, lut=216_000, bram=235, dsp=2_080)
        for usage in (tc1, tc2):
            p = PAPER_POWER.total_power_w(usage)
            assert 17.0 < p < 29.0

    def test_frequency_scaling(self):
        usage = ResourceVector(dsp=1000)
        base = PAPER_POWER.total_power_w(usage)
        double = PAPER_POWER.total_power_w(usage, frequency_scale=2.0)
        assert double > base
        assert double - PAPER_POWER.static_w == pytest.approx(
            2 * (base - PAPER_POWER.static_w)
        )

    def test_invalid_frequency_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            PAPER_POWER.total_power_w(ResourceVector(), frequency_scale=0)

    def test_efficiency(self):
        usage = ResourceVector(dsp=1000)
        eff = PAPER_POWER.efficiency_gflops_per_w(10.0, usage)
        assert eff == pytest.approx(10.0 / PAPER_POWER.total_power_w(usage))

    def test_negative_gflops_rejected(self):
        with pytest.raises(ConfigurationError):
            PAPER_POWER.efficiency_gflops_per_w(-1.0, ResourceVector())


class TestBoard:
    def test_vc707_composition(self):
        assert VC707.device.name == "xc7vx485t"
        assert VC707.clock is PAPER_CLOCK

    def test_seconds_conversion(self):
        assert VC707.seconds(100) == pytest.approx(1e-6)
