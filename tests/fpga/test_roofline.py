"""Unit tests for the roofline analysis."""

import pytest

from repro.core import cifar10_design, usps_design
from repro.errors import ConfigurationError
from repro.fpga import VC707
from repro.fpga.roofline import (
    device_compute_roof_gflops,
    roofline_point,
)


class TestComputeRoof:
    def test_virtex7_float_roof(self):
        # 2800 DSP / 5 per lane = 560 lanes * 2 FLOP * 100 MHz = 112 GFLOPS.
        assert device_compute_roof_gflops(VC707) == pytest.approx(112.0)

    def test_fixed16_roof_higher(self):
        # 1 DSP per fixed16 MAC lane -> far higher roof.
        assert device_compute_roof_gflops(VC707, "fixed16") > \
            device_compute_roof_gflops(VC707, "float32")


class TestRooflinePoints:
    def test_tc1_low_intensity(self):
        p = roofline_point(usps_design())
        # ~64k FLOP over ~1 kB: intensity around 60 FLOP/byte.
        assert 20 < p.operational_intensity < 100

    def test_tc2_higher_intensity(self):
        p1 = roofline_point(usps_design())
        p2 = roofline_point(cifar10_design())
        assert p2.operational_intensity > p1.operational_intensity

    def test_achieved_below_roof(self):
        for d in (usps_design(), cifar10_design()):
            p = roofline_point(d)
            assert p.achieved_gflops <= p.attainable_gflops * 1.001

    def test_tc1_is_bandwidth_limited_in_practice(self):
        # TC1's pipeline is DMA-bound (the perf model's bottleneck), and
        # the roofline sees plenty of compute headroom.
        p = roofline_point(usps_design())
        assert p.achieved_gflops < p.compute_roof_gflops

    def test_roof_fraction_meaningful(self):
        for d in (usps_design(), cifar10_design()):
            p = roofline_point(d)
            assert 0.0 < p.roof_fraction <= 1.0

    def test_bound_classification(self):
        p = roofline_point(cifar10_design())
        assert p.bound in ("compute", "bandwidth")
        if p.bound == "compute":
            assert p.compute_roof_gflops <= p.bandwidth_roof_gflops
