"""Test package."""
