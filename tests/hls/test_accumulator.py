"""Unit + property tests for interleaved accumulators (Section IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.hls import AccumulatorModel, interleaved_sum


class TestFunctional:
    def test_single_lane_is_sequential_sum(self):
        vals = np.array([1, 2, 3, 4], dtype=np.float32)
        assert interleaved_sum(vals, 1) == np.float32(10)

    def test_lanes_partition_by_index(self):
        vals = np.array([1, 10, 2, 20], dtype=np.float32)
        # lane0: 1+2, lane1: 10+20, tree: 3+30.
        assert interleaved_sum(vals, 2) == np.float32(33)

    def test_more_lanes_than_values(self):
        vals = np.array([1, 2], dtype=np.float32)
        assert interleaved_sum(vals, 8) == np.float32(3)

    def test_batched(self):
        vals = np.arange(8, dtype=np.float32).reshape(2, 4)
        got = interleaved_sum(vals, 2)
        assert np.allclose(got, vals.sum(axis=-1))

    def test_invalid_lanes_rejected(self):
        with pytest.raises(ConfigurationError):
            interleaved_sum(np.ones(4, dtype=np.float32), 0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            interleaved_sum(np.zeros((0,), dtype=np.float32), 2)

    @settings(max_examples=50)
    @given(
        arrays(np.float32, st.integers(1, 64), elements=st.floats(-1e3, 1e3, width=32)),
        st.integers(1, 16),
    )
    def test_property_close_to_float64(self, vals, lanes):
        got = float(interleaved_sum(vals, lanes))
        exp = float(np.sum(vals, dtype=np.float64))
        assert got == pytest.approx(exp, abs=1e-2, rel=1e-4)


class TestModel:
    def test_single_accumulator_ii_is_add_latency(self):
        assert AccumulatorModel(64, 1).ii == 11

    def test_enough_lanes_reach_ii1(self):
        # Paper: "a higher number of accumulators than the single addition
        # latency" pipelines fully.
        assert AccumulatorModel(64, 11).ii == 1
        assert AccumulatorModel(64, 12).ii == 1

    def test_partial_unroll_intermediate_ii(self):
        assert AccumulatorModel(64, 4).ii == 3  # ceil(11/4)

    def test_latency_decreases_with_lanes(self):
        lat = [AccumulatorModel(64, l).total_latency for l in (1, 2, 4, 12)]
        assert lat == sorted(lat, reverse=True)

    def test_resource_increase_with_lanes(self):
        # The paper's trade-off: lower latency, higher resource utilization.
        assert (
            AccumulatorModel(64, 12).resources.dsp
            > AccumulatorModel(64, 1).resources.dsp
        )

    def test_speedup_vs_single(self):
        assert AccumulatorModel(900, 12).speedup_vs_single() > 5

    def test_invalid_terms_rejected(self):
        with pytest.raises(ConfigurationError):
            AccumulatorModel(0, 1)

    def test_fixed_point_has_no_issue(self):
        # Section IV-B: "the issue does not arise when using integer values".
        assert AccumulatorModel(64, 1, dtype="fixed16").ii == 1
