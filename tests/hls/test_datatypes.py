"""Unit + property tests for the ap_fixed datatype model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hls import DEFAULT_FIXED, FixedPointFormat


class TestValidation:
    def test_width_bounds(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(1, 1)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(65, 8)

    def test_integer_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(16, 0)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(16, 17)

    def test_unknown_rounding_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(16, 6, rounding="stochastic")


class TestProperties:
    def test_frac_bits(self):
        assert FixedPointFormat(16, 6).frac_bits == 10

    def test_scale(self):
        assert FixedPointFormat(16, 6).scale == 2.0 ** -10

    def test_range(self):
        f = FixedPointFormat(8, 4)
        assert f.max_value == (2 ** 7 - 1) / 16
        assert f.min_value == -(2 ** 7) / 16

    def test_describe(self):
        assert FixedPointFormat(16, 6).describe() == "ap_fixed<16,6>"

    def test_dtype_key(self):
        assert FixedPointFormat(16, 6).dtype_key == "fixed16"
        assert FixedPointFormat(32, 12).dtype_key == "fixed32"


class TestQuantization:
    def test_exactly_representable_roundtrips(self):
        f = FixedPointFormat(16, 6)
        vals = np.array([0.5, -1.25, 3.0625])
        assert np.array_equal(f.quantize(vals), vals)

    def test_rounding_to_nearest(self):
        f = FixedPointFormat(8, 4, rounding="round")
        # scale = 1/16; 0.04 -> 0.0625 (nearest multiple is 1/16*1=0.0625? no: 0.04*16=0.64 -> 1)
        assert f.quantize(np.array([0.04]))[0] == pytest.approx(1 / 16)

    def test_truncation_mode(self):
        f = FixedPointFormat(8, 4, rounding="trunc")
        assert f.quantize(np.array([0.059]))[0] == 0.0

    def test_saturation_high(self):
        f = FixedPointFormat(8, 4)
        assert f.quantize(np.array([100.0]))[0] == f.max_value

    def test_saturation_low(self):
        f = FixedPointFormat(8, 4)
        assert f.quantize(np.array([-100.0]))[0] == f.min_value

    def test_error_bounded_by_half_lsb(self):
        f = FixedPointFormat(16, 6)
        vals = np.linspace(-20, 20, 1001)
        assert f.quantization_error(vals) <= f.scale / 2 + 1e-12

    def test_error_empty_is_zero(self):
        assert FixedPointFormat(16, 6).quantization_error(np.array([])) == 0.0

    @settings(max_examples=50)
    @given(
        st.integers(4, 24),
        st.floats(-30, 30),
    )
    def test_property_idempotent(self, width, value):
        f = FixedPointFormat(width, min(6, width))
        once = f.quantize(np.array([value]))
        twice = f.quantize(once)
        assert np.array_equal(once, twice)

    @settings(max_examples=50)
    @given(st.floats(-30, 30))
    def test_property_within_range_error_bounded(self, value):
        f = DEFAULT_FIXED
        if not (f.min_value <= value <= f.max_value):
            return
        q = float(f.quantize(np.array([value]))[0])
        assert abs(q - value) <= f.scale / 2 + 1e-12

    def test_raw_roundtrip(self):
        f = FixedPointFormat(12, 4)
        raw = f.to_raw(np.array([1.5, -2.25]))
        assert np.allclose(f.from_raw(raw), [1.5, -2.25])
