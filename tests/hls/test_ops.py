"""Unit tests for the operator cost tables."""

import pytest

from repro.config import FADD_LATENCY_CYCLES, FMUL_LATENCY_CYCLES
from repro.errors import ConfigurationError
from repro.hls import mac_cost, op_cost


class TestLookup:
    def test_float_add_latency_is_papers_11_cycles(self):
        assert op_cost("add", "float32").latency == FADD_LATENCY_CYCLES == 11

    def test_float_mul_latency(self):
        assert op_cost("mul", "float32").latency == FMUL_LATENCY_CYCLES

    def test_float_ops_use_dsps(self):
        assert op_cost("mul", "float32").resources.dsp == 3
        assert op_cost("add", "float32").resources.dsp == 2

    def test_fixed16_single_cycle(self):
        assert op_cost("add", "fixed16").latency == 1
        assert op_cost("mul", "fixed16").latency == 1

    def test_fixed16_mul_one_dsp(self):
        assert op_cost("mul", "fixed16").resources.dsp == 1

    def test_fixed_add_no_dsp(self):
        assert op_cost("add", "fixed16").resources.dsp == 0
        assert op_cost("add", "fixed32").resources.dsp == 0

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            op_cost("add", "float64")

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            op_cost("fma", "float32")

    def test_mac_cost_pair(self):
        mul, add = mac_cost("float32")
        assert mul.resources.dsp == 3 and add.resources.dsp == 2

    def test_fixed_cheaper_than_float_everywhere(self):
        for op in ("add", "mul", "cmp"):
            f = op_cost(op, "float32").resources
            x = op_cost(op, "fixed16").resources
            assert x.dsp <= f.dsp and x.lut <= f.lut and x.ff <= f.ff
