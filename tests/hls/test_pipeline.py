"""Unit tests for Eq. 4 and pipeline latency math."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.hls import PipelineSchedule, initiation_interval, tree_depth


class TestEquation4:
    def test_balanced_ports(self):
        # II = max(OUT_FM/OUT_PORTS, IN_FM/IN_PORTS).
        assert initiation_interval(6, 6, 16, 1) == 16

    def test_input_bound(self):
        assert initiation_interval(12, 1, 12, 12) == 12

    def test_fully_parallel_is_ii1(self):
        assert initiation_interval(6, 6, 16, 16) == 1

    def test_paper_tc2_conv2(self):
        assert initiation_interval(12, 1, 36, 1) == 36

    def test_paper_tc1_conv1(self):
        assert initiation_interval(1, 1, 6, 6) == 1

    def test_nondividing_in_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            initiation_interval(6, 4, 16, 1)

    def test_nondividing_out_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            initiation_interval(6, 6, 16, 3)

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            initiation_interval(6, 0, 16, 1)

    @given(
        in_fm=st.integers(1, 64), out_fm=st.integers(1, 64),
    )
    def test_single_port_ii_is_max_fm(self, in_fm, out_fm):
        assert initiation_interval(in_fm, 1, out_fm, 1) == max(in_fm, out_fm)

    @given(in_fm=st.integers(1, 32), out_fm=st.integers(1, 32))
    def test_more_ports_never_slower(self, in_fm, out_fm):
        base = initiation_interval(in_fm, 1, out_fm, 1)
        best = initiation_interval(in_fm, in_fm, out_fm, out_fm)
        assert best <= base


class TestSchedule:
    def test_latency_formula(self):
        s = PipelineSchedule(ii=2, depth=10, trip_count=5)
        assert s.latency == 10 + 2 * 4

    def test_zero_trips(self):
        assert PipelineSchedule(ii=1, depth=5, trip_count=0).latency == 0

    def test_throughput(self):
        s = PipelineSchedule(ii=4, depth=10, trip_count=100)
        assert s.throughput(100e6) == 25e6

    def test_invalid_ii_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineSchedule(ii=0, depth=1, trip_count=1)

    def test_steady_interval(self):
        assert PipelineSchedule(ii=3, depth=9, trip_count=2).steady_interval == 3


class TestTreeDepth:
    def test_one_input_no_levels(self):
        assert tree_depth(1) == 0

    def test_powers_of_two(self):
        assert tree_depth(2) == 1
        assert tree_depth(8) == 3

    def test_non_power(self):
        assert tree_depth(25) == 5

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            tree_depth(0)
