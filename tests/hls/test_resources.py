"""Unit tests for resource vectors and BRAM sizing."""

import pytest

from repro.errors import ConfigurationError
from repro.hls import ResourceVector, ZERO, bram36_for_words


class TestResourceVector:
    def test_addition(self):
        r = ResourceVector(1, 2, 3, 4) + ResourceVector(10, 20, 30, 40)
        assert (r.ff, r.lut, r.bram, r.dsp) == (11, 22, 33, 44)

    def test_subtraction(self):
        r = ResourceVector(10, 10, 10, 10) - ResourceVector(1, 2, 3, 4)
        assert (r.ff, r.lut, r.bram, r.dsp) == (9, 8, 7, 6)

    def test_scalar_multiplication(self):
        r = ResourceVector(1, 2, 3, 4) * 3
        assert (r.ff, r.lut, r.bram, r.dsp) == (3, 6, 9, 12)

    def test_rmul(self):
        assert (2 * ResourceVector(dsp=5)).dsp == 10

    def test_fits_in(self):
        budget = ResourceVector(100, 100, 10, 10)
        assert ResourceVector(100, 50, 10, 1).fits_in(budget)
        assert not ResourceVector(101, 50, 10, 1).fits_in(budget)

    def test_utilization(self):
        u = ResourceVector(50, 25, 5, 1).utilization(ResourceVector(100, 100, 10, 10))
        assert u == {"ff": 0.5, "lut": 0.25, "bram": 0.5, "dsp": 0.1}

    def test_utilization_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceVector(1, 1, 1, 1).utilization(ResourceVector(0, 1, 1, 1))

    def test_rounded(self):
        r = ResourceVector(1.2, 2.0, 0.1, 3.9).rounded()
        assert (r.ff, r.lut, r.bram, r.dsp) == (2, 2, 1, 4)

    def test_zero_constant(self):
        assert (ZERO + ResourceVector(dsp=1)).dsp == 1

    def test_as_dict_roundtrip(self):
        d = ResourceVector(1, 2, 3, 4).as_dict()
        assert d == {"ff": 1, "lut": 2, "bram": 3, "dsp": 4}


class TestBram36:
    def test_zero_words(self):
        assert bram36_for_words(0) == 0

    def test_shallow_buffer_costs_nothing(self):
        assert bram36_for_words(16, 32) == 0

    def test_one_bram_for_1k_words(self):
        assert bram36_for_words(1024, 32) == 1

    def test_two_brams_for_1025_words(self):
        assert bram36_for_words(1025, 32) == 2

    def test_large_rom(self):
        assert bram36_for_words(57_600, 32) == 57  # TC2 fc1 weights

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bram36_for_words(-1)
