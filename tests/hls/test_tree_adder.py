"""Unit + property tests for the tree adder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.hls import AdderTreeModel, chain_reduce, tree_reduce


class TestFunctional:
    def test_single_element(self):
        assert tree_reduce(np.array([3.5], dtype=np.float32)) == np.float32(3.5)

    def test_pairwise_association(self):
        # ((a+b) + (c+d)) — not ((a+b)+c)+d.
        vals = np.array([1e8, 1.0, -1e8, 1.0], dtype=np.float32)
        got = tree_reduce(vals)
        exp = np.float32(np.float32(1e8 + 1.0) + np.float32(-1e8 + 1.0))
        assert got == exp

    def test_odd_count_carries_last(self):
        vals = np.array([1, 2, 3], dtype=np.float32)
        assert tree_reduce(vals) == np.float32(np.float32(1 + 2) + 3)

    def test_batched_last_axis(self):
        vals = np.arange(12, dtype=np.float32).reshape(3, 4)
        got = tree_reduce(vals)
        assert got.shape == (3,)
        assert np.allclose(got, vals.sum(axis=-1))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tree_reduce(np.zeros((0,), dtype=np.float32))

    def test_chain_reduce_left_to_right(self):
        vals = np.array([1e8, 1.0, 1.0], dtype=np.float32)
        exp = np.float32(np.float32(1e8 + 1.0) + 1.0)
        assert chain_reduce(vals) == exp

    @settings(max_examples=50)
    @given(
        arrays(
            np.float32, st.integers(1, 40),
            elements=st.floats(-1e3, 1e3, width=32),
        )
    )
    def test_property_close_to_float64_sum(self, vals):
        got = float(tree_reduce(vals))
        exp = float(np.sum(vals, dtype=np.float64))
        assert got == pytest.approx(exp, abs=1e-2, rel=1e-4)

    @settings(max_examples=30)
    @given(
        arrays(
            np.float32, st.integers(1, 33),
            elements=st.floats(-100, 100, width=32),
        )
    )
    def test_property_permutation_of_pairs_exact_when_exactable(self, vals):
        # Tree reduce of all-equal values is exact regardless of shape.
        const = np.full_like(vals, 2.0)
        assert tree_reduce(const) == np.float32(2.0 * len(vals))


class TestModel:
    def test_depth_levels(self):
        assert AdderTreeModel(150).depth_levels == 8

    def test_latency(self):
        assert AdderTreeModel(8).latency == 3 * 11

    def test_adder_count(self):
        assert AdderTreeModel(25).n_adders == 24

    def test_chain_latency_worse(self):
        m = AdderTreeModel(25)
        assert m.chain_latency == 24 * 11
        assert m.depth_advantage == (24 - 5) * 11

    def test_resources_scale_with_adders(self):
        assert AdderTreeModel(9).resources.dsp == 8 * 2

    def test_single_input_free(self):
        m = AdderTreeModel(1)
        assert m.latency == 0 and m.n_adders == 0

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            AdderTreeModel(0)

    def test_paper_motivation_depth_decreases(self):
        # Section IV-A: the tree "decreases the pipeline depth" vs a chain.
        for n in (4, 25, 150):
            m = AdderTreeModel(n)
            assert m.latency < m.chain_latency
