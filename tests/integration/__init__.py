"""Test package."""
