"""End-to-end integration: trained networks through the cycle simulator.

These are the load-bearing correctness tests of the whole repository:
train the paper's networks on the synthetic datasets, compile them to
dataflow graphs, stream real test images through the cycle-accurate
simulator, and demand (a) numerical agreement with the software model and
(b) identical classification decisions.
"""

import numpy as np
import pytest

from repro.core import (
    cifar10_design,
    cifar10_model,
    extract_weights,
    run_batch,
    usps_design,
    usps_model,
)
from repro.datasets import generate_cifar10, generate_usps, train_test_split
from repro.nn import accuracy, train_classifier


@pytest.fixture(scope="module")
def trained_usps():
    x, y = generate_usps(400, seed=42)
    xt, yt, xv, yv = train_test_split(x, y, 0.2, seed=42)
    model = usps_model(np.random.default_rng(42))
    res = train_classifier(model, xt, yt, epochs=6, batch_size=32, lr=0.08,
                           x_test=xv, y_test=yv, seed=42)
    return model, xv, yv, res


class TestUspsEndToEnd:
    def test_training_reaches_useful_accuracy(self, trained_usps):
        _, _, _, res = trained_usps
        assert res.test_accuracy > 0.85

    def test_simulated_outputs_match_reference(self, trained_usps):
        model, xv, _, _ = trained_usps
        design = usps_design()
        report = run_batch(design, extract_weights(design, model), xv[:6],
                           reference=model)
        assert report.max_abs_error < 1e-4

    def test_simulated_classifications_identical(self, trained_usps):
        model, xv, yv, _ = trained_usps
        design = usps_design()
        report = run_batch(design, extract_weights(design, model), xv[:10])
        sim_pred = np.argmax(report.outputs, axis=-1)
        ref_pred = model.predict(xv[:10])
        assert np.array_equal(sim_pred, ref_pred)

    def test_simulated_accelerator_classifies_digits(self, trained_usps):
        model, xv, yv, _ = trained_usps
        design = usps_design()
        report = run_batch(design, extract_weights(design, model), xv[:10])
        sim_pred = np.argmax(report.outputs, axis=-1)
        assert accuracy(sim_pred, yv[:10]) > 0.6

    def test_batch_pipelining_at_paper_interval(self, trained_usps):
        model, xv, _, _ = trained_usps
        design = usps_design()
        report = run_batch(design, extract_weights(design, model), xv[:6])
        assert report.measured_interval == 256  # DMA-bound, one pixel/cycle


class TestCifarEndToEnd:
    def test_simulated_outputs_match_reference(self, rng):
        # Untrained weights suffice for numerical equivalence; training
        # TC2 in-suite would be slow.
        model = cifar10_model(np.random.default_rng(7))
        design = cifar10_design()
        x, _ = generate_cifar10(2, seed=7)
        report = run_batch(design, extract_weights(design, model), x,
                           reference=model)
        assert report.max_abs_error < 1e-4

    def test_interval_matches_model_within_tolerance(self, rng):
        model = cifar10_model(np.random.default_rng(7))
        design = cifar10_design()
        x, _ = generate_cifar10(2, seed=8)
        report = run_batch(design, extract_weights(design, model), x)
        assert report.measured_interval == pytest.approx(9408, rel=0.05)
