"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a bug. Each runs
in a subprocess with a scratch working directory (some write artifacts).
The CIFAR-10 pipeline is exercised with a reduced workload via its
building blocks elsewhere; its full script is excluded here only for
suite runtime.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")
SRC_DIR = os.path.join(REPO_ROOT, "src")

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_network.py",
    "verify_and_report.py",
    "dse_explore.py",
    "usps_pipeline.py",
    "fixed_point_inference.py",
    "trace_pipeline.py",
    "model_zoo_analysis.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), path
    # The child runs from a scratch directory, so a relative PYTHONPATH
    # (e.g. "src") inherited from the parent would not resolve: inject the
    # absolute src path explicitly.
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR if not existing else SRC_DIR + os.pathsep + existing
    )
    proc = subprocess.run(
        [sys.executable, path],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_all_examples_are_listed():
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    covered = set(FAST_EXAMPLES) | {"cifar10_pipeline.py"}
    assert present == covered, (
        "new example scripts must be added to the smoke tests"
    )
