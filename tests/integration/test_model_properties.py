"""Property tests: the analytical models are total over valid designs.

For any design the strategy can produce, the performance model, resource
model, HLS report, DSE enumeration and block-design rendering must
succeed and satisfy their basic invariants — no crashes, no nonsensical
numbers. These guard the analytical half of the library the way the
random-design simulation test guards the elaboration half.
"""

from hypothesis import HealthCheck, given, settings

from repro.core import core_reports, design_resources, network_perf
from repro.dse import apply_configuration, iter_configurations
from tests.strategies import small_designs

_SETTINGS = dict(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestAnalyticalTotality:
    @settings(**_SETTINGS)
    @given(design=small_designs())
    def test_perf_model_invariants(self, design):
        perf = network_perf(design)
        assert perf.interval >= 1
        assert perf.fill_latency >= perf.interval
        for layer in perf.layers:
            assert layer.interval >= max(1, layer.core_cycles // max(layer.core_cycles, 1))
            assert layer.in_beats > 0 and layer.out_beats > 0
        # Batch curve is monotone non-increasing.
        means = [perf.mean_cycles_per_image(b) for b in (1, 2, 4, 16)]
        assert all(a >= b for a, b in zip(means, means[1:]))

    @settings(**_SETTINGS)
    @given(design=small_designs())
    def test_resource_model_invariants(self, design):
        res = design_resources(design)
        total = res.total
        assert total.ff > 0 and total.lut > 0 and total.dsp >= 0
        # Per-layer parts sum (with the base) to the total.
        acc = res.base
        for r in res.per_layer.values():
            acc = acc + r
        assert acc.as_dict() == total.as_dict()

    @settings(**_SETTINGS)
    @given(design=small_designs())
    def test_hls_report_covers_all_layers(self, design):
        reports = core_reports(design)
        assert len(reports) == design.n_layers
        for c in reports:
            assert c.ii >= 1 and c.latency > 0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(design=small_designs())
    def test_dse_space_configs_all_validate(self, design):
        n = 0
        for config in iter_configurations(design, limit=200):
            applied = apply_configuration(design, config)  # raises if invalid
            assert applied.n_layers == design.n_layers
            n += 1
        assert n >= 1  # the given configuration itself is always valid

    @settings(**_SETTINGS)
    @given(design=small_designs())
    def test_block_design_renders(self, design):
        text = design.block_design()
        for spec in design.specs:
            assert f"[{spec.name}]" in text
