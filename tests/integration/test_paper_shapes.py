"""Paper-shape integration tests: every headline claim, as an assertion.

One test per qualitative claim of the paper's evaluation; the benchmark
harness regenerates the tables/figures, these tests pin the shapes so a
regression anywhere in the stack fails loudly.
"""

import pytest

from repro.baselines import MICROSOFT_CIFAR10, sequential_perf
from repro.core import (
    batch_sweep,
    cifar10_design,
    design_resources,
    network_perf,
    usps_design,
)
from repro.fpga import PAPER_POWER, VC707, XC7VX485T


class TestFigure6Shapes:
    def test_mean_time_decreases_monotonically(self):
        for design in (usps_design(), cifar10_design()):
            rows = batch_sweep(design, list(range(1, 51)), VC707)
            means = [r["mean_us"] for r in rows]
            assert means == sorted(means, reverse=True)

    def test_convergence_when_batch_exceeds_layer_count(self):
        # "the time converges approximatively when the size of the batch of
        # images becomes greater than the total number of layers".
        for design in (usps_design(), cifar10_design()):
            perf = network_perf(design)
            converged_us = perf.interval / 100
            rows = batch_sweep(design, [design.n_layers + 2, 1000], VC707)
            assert rows[0]["mean_us"] < 2.5 * converged_us
            assert rows[1]["mean_us"] == pytest.approx(converged_us, rel=0.01)

    def test_tc2_slower_than_tc1_by_large_factor(self):
        t1 = network_perf(usps_design()).interval
        t2 = network_perf(cifar10_design()).interval
        # Paper: 5.8 us vs 128.1 us (22x); our simulated substrate: 2.56 vs
        # 94.1 us (37x). Same direction, same order of magnitude.
        assert 10 < t2 / t1 < 60


class TestTable1Shapes:
    def test_both_designs_fit(self):
        for design in (usps_design(), cifar10_design()):
            assert design_resources(design).fits(XC7VX485T)

    def test_tc1_under_about_half_tc2_well_above(self):
        # "the CNN of test case 1 ... consumes approximatively less than 50%
        # of the available resources" (DSP slightly above, as in the paper);
        # test case 2 "consumes a higher number of resources".
        u1 = design_resources(usps_design()).utilization(XC7VX485T)
        u2 = design_resources(cifar10_design()).utilization(XC7VX485T)
        assert u1["ff"] < 0.5 and u1["lut"] < 0.6 and u1["bram"] < 0.1
        assert all(u2[k] > u1[k] for k in u1)

    def test_tc2_cannot_be_parallelized_much_further(self):
        # The paper could not parallelize TC2's conv layers; our resource
        # model agrees: the II=1 fully-parallel conv2 alone blows the DSPs.
        from repro.core import with_layer_ports

        big = with_layer_ports(cifar10_design(), "conv2", 12, 36)
        assert not design_resources(big).fits(XC7VX485T)


class TestTable2Shapes:
    def test_dataflow_beats_microsoft_by_several_x(self):
        ips = network_perf(cifar10_design()).images_per_second(VC707)
        speedup = MICROSOFT_CIFAR10.speedup_of(ips)
        # Paper claims 3.36x at its measured 7809 img/s; our simulated
        # interval gives a somewhat larger factor. Direction + magnitude.
        assert 2.0 < speedup < 8.0

    def test_tc2_more_power_efficient_than_tc1(self):
        # Paper: 1.19 vs 0.25 GFLOPS/W.
        effs = {}
        for design in (usps_design(), cifar10_design()):
            perf = network_perf(design)
            res = design_resources(design)
            gflops = design.flops_per_image() * perf.images_per_second(VC707) / 1e9
            effs[design.name] = PAPER_POWER.efficiency_gflops_per_w(gflops, res.total)
        assert effs["cifar10-tc2"] > effs["usps-tc1"]

    def test_power_in_paper_envelope(self):
        for design in (usps_design(), cifar10_design()):
            watts = PAPER_POWER.total_power_w(design_resources(design).total)
            assert 17 < watts < 29  # Table II implies ~21 and ~24 W

    def test_latency_same_order_as_paper(self):
        lat_tc1 = network_perf(usps_design()).image_latency_s(VC707) * 1e3
        lat_tc2 = network_perf(cifar10_design()).image_latency_s(VC707) * 1e3
        assert 0.3 < lat_tc1 / 0.0058 < 1.2
        assert 0.3 < lat_tc2 / 0.128 < 1.2


class TestPipelineClaims:
    def test_sequential_baseline_much_slower(self):
        # The motivating claim: a non-dataflow implementation "effectively
        # diminishes the overall performance gains".
        for design in (usps_design(), cifar10_design()):
            ratio = (
                sequential_perf(design).cycles_per_image
                / network_perf(design).interval
            )
            assert ratio > 2.0

    def test_sequential_baseline_loses_to_microsoft_dataflow_wins(self):
        # Our layer-at-a-time variant of TC2 would NOT have beaten [28];
        # the dataflow pipeline is what wins the comparison.
        seq_ips = sequential_perf(cifar10_design()).images_per_second(VC707)
        df_ips = network_perf(cifar10_design()).images_per_second(VC707)
        assert seq_ips < MICROSOFT_CIFAR10.images_per_second < df_ips
