"""Property test: ANY valid design's dataflow elaboration is correct.

Hypothesis generates random small network designs — random kernel sizes,
strides, padding, channel counts, port configurations, activations, pool
modes and layer counts — plus random weights and inputs; for every one of
them the compiled dataflow graph must reproduce the NumPy reference. This
is the strongest statement the repository makes: the methodology's
elaboration is correct by construction, not just on the paper's two
networks.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import design_reference_forward, random_weights
from repro.core.builder import build_network
from tests.strategies import small_designs


class TestRandomDesigns:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(design=small_designs(), seed=st.integers(0, 2**16))
    def test_dataflow_matches_reference(self, design, seed):
        weights = random_weights(design, seed=seed)
        rng = np.random.default_rng(seed)
        batch = rng.uniform(0, 1, (2,) + design.input_shape).astype(np.float32)
        built = build_network(design, weights, batch)
        built.run_functional()
        got = built.outputs()
        ref = design_reference_forward(design, weights, batch)[-1]
        if ref.shape != got.shape:
            ref = ref.reshape(got.shape)
        assert np.allclose(got, ref, atol=1e-4), design.block_design()

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(design=small_designs(), seed=st.integers(0, 2**16))
    def test_timed_equals_functional(self, design, seed):
        weights = random_weights(design, seed=seed)
        rng = np.random.default_rng(seed)
        batch = rng.uniform(0, 1, (2,) + design.input_shape).astype(np.float32)
        a = build_network(design, weights, batch)
        a.run()
        b = build_network(design, weights, batch)
        b.run_functional()
        assert np.array_equal(a.outputs(), b.outputs())

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(design=small_designs(), seed=st.integers(0, 2**16))
    def test_three_way_engine_equivalence(self, design, seed):
        """event == lockstep == compiled on ANY valid strict design.

        Compared on the cross-engine contract: stable output digests and
        per-process fire counts. Random designs exercise every fused
        kernel variant (mean/max pooling, multi-port cores, partial FC
        accumulator lanes, padding/stride geometry). The compiled run
        must actually compile — a fallback warning fails the test.
        """
        import warnings

        from repro.compiled import CompiledFallbackWarning
        from repro.dataflow import stable_digest

        weights = random_weights(design, seed=seed)
        rng = np.random.default_rng(seed)
        batch = rng.uniform(0, 1, (2,) + design.input_shape).astype(np.float32)
        outcomes = {}
        for sched in ("event", "lockstep", "compiled"):
            built = build_network(design, weights, batch)
            with warnings.catch_warnings():
                warnings.simplefilter("error", CompiledFallbackWarning)
                res = built.run(scheduler=sched)
            fires = {
                actor: [p["fires"] for p in procs]
                for actor, procs in res.actor_stats.items()
            }
            outcomes[sched] = (stable_digest(built.outputs()), fires)
        ref = outcomes["event"]
        assert outcomes["lockstep"] == ref, design.block_design()
        assert outcomes["compiled"] == ref, design.block_design()
