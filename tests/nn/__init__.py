"""Test package."""
