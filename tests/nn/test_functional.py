"""Unit + property tests for im2col/col2im and convolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn import col2im, conv2d, conv2d_naive, im2col
from repro.sst import WindowSpec


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, WindowSpec(3, 3))
        assert cols.shape == (2, 27, 36)

    def test_column_content(self, rng):
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        cols = im2col(x, WindowSpec(3, 3))
        # Column 0 is the window at (0, 0), row-major.
        assert np.array_equal(cols[0, :, 0], x[0, 0, :3, :3].ravel())

    def test_stride_skips(self, rng):
        x = rng.standard_normal((1, 1, 6, 6)).astype(np.float32)
        cols = im2col(x, WindowSpec(2, 2, stride=2))
        assert cols.shape == (1, 4, 9)
        assert np.array_equal(cols[0, :, 1], x[0, 0, 0:2, 2:4].ravel())

    def test_padding_zeros(self, rng):
        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float32)
        cols = im2col(x, WindowSpec(3, 3, pad=1))
        # First window's first row is padding.
        assert np.all(cols[0, :3, 0] == 0)

    def test_requires_4d(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 8, 8), dtype=np.float32), WindowSpec(3, 3))


class TestCol2Im:
    def test_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        # that makes the conv backward pass correct.
        spec = WindowSpec(3, 3, stride=2, pad=1)
        x = rng.standard_normal((2, 3, 7, 8)).astype(np.float64)
        cols_shape = im2col(x.astype(np.float32), spec).shape
        y = rng.standard_normal(cols_shape)
        lhs = np.sum(im2col(x.astype(np.float32), spec).astype(np.float64) * y)
        rhs = np.sum(x * col2im(y, x.shape, spec))
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_overlap_accumulates(self):
        spec = WindowSpec(2, 2)
        cols = np.ones((1, 4, 4), dtype=np.float32)  # 3x3 input, 2x2 windows
        out = col2im(cols, (1, 1, 3, 3), spec)
        # Center pixel belongs to all 4 windows.
        assert out[0, 0, 1, 1] == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            col2im(np.zeros((1, 4, 4), dtype=np.float32), (1, 1, 5, 5), WindowSpec(2, 2))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 2), st.integers(1, 3), st.integers(1, 3),
        st.integers(1, 2), st.integers(0, 1), st.integers(5, 8), st.integers(5, 8),
        st.integers(0, 2**16),
    )
    def test_property_adjoint(self, n, c, k, stride, pad, h, w, seed):
        if pad >= k:
            return
        spec = WindowSpec(k, k, stride, pad)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, h, w))
        cols = im2col(x.astype(np.float32), spec)
        y = rng.standard_normal(cols.shape)
        lhs = np.sum(cols.astype(np.float64) * y)
        rhs = np.sum(x * col2im(y, x.shape, spec))
        assert lhs == pytest.approx(rhs, rel=1e-5, abs=1e-6)


class TestConv2d:
    @pytest.mark.parametrize(
        "spec",
        [
            WindowSpec(3, 3),
            WindowSpec(5, 5),
            WindowSpec(3, 3, stride=2),
            WindowSpec(3, 3, pad=1),
            WindowSpec(3, 3, stride=2, pad=1),
            WindowSpec(1, 1),
        ],
    )
    def test_matches_naive(self, rng, spec):
        x = rng.standard_normal((2, 3, 9, 10)).astype(np.float32)
        w = rng.standard_normal((4, 3, spec.kh, spec.kw)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        assert np.allclose(conv2d(x, w, b, spec), conv2d_naive(x, w, b, spec), atol=1e-4)

    def test_channel_mismatch_rejected(self, rng):
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv2d(x, w, np.zeros(4, dtype=np.float32), WindowSpec(3, 3))

    def test_kernel_spec_mismatch_rejected(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 5, 5)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv2d(x, w, np.zeros(4, dtype=np.float32), WindowSpec(3, 3))

    def test_bias_shape_rejected(self, rng):
        x = rng.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv2d(x, w, np.zeros(3, dtype=np.float32), WindowSpec(3, 3))

    def test_bias_added_per_filter(self, rng):
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        w = np.zeros((2, 1, 3, 3), dtype=np.float32)
        b = np.array([1.5, -2.0], dtype=np.float32)
        out = conv2d(x, w, b, WindowSpec(3, 3))
        assert np.all(out[0, 0] == 1.5) and np.all(out[0, 1] == -2.0)
