"""Unit tests for every layer, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    MeanPool2D,
    ReLU,
    Tanh,
    activation_fn,
    make_activation,
)
from repro.nn.losses import cross_entropy


def numerical_grad_check(layer, x, param_name, idx, labels=None, eps=1e-3):
    """Finite-difference check of one parameter entry against backward()."""
    out = layer.forward(x, train=True)
    n, *rest = out.shape
    flat = out.reshape(n, -1)
    labels = np.zeros(n, dtype=np.int64) if labels is None else labels
    _, grad = cross_entropy(flat, labels)
    layer.backward(grad.reshape(out.shape))
    analytic = layer.grads()[param_name][idx]
    p = layer.params()[param_name]
    orig = p[idx]
    p[idx] = orig + eps
    lp, _ = cross_entropy(layer.forward(x).reshape(n, -1), labels)
    p[idx] = orig - eps
    lm, _ = cross_entropy(layer.forward(x).reshape(n, -1), labels)
    p[idx] = orig
    numeric = (lp - lm) / (2 * eps)
    assert numeric == pytest.approx(float(analytic), abs=2e-2, rel=5e-2)


def numerical_input_grad_check(layer, x, eps=1e-3):
    """Finite-difference check of dL/dx against backward()'s return."""
    out = layer.forward(x, train=True)
    n = out.shape[0]
    labels = np.zeros(n, dtype=np.int64)
    _, grad = cross_entropy(out.reshape(n, -1), labels)
    dx = layer.backward(grad.reshape(out.shape))
    idx = tuple(0 for _ in x.shape)
    xp = x.copy()
    xp[idx] += eps
    lp, _ = cross_entropy(layer.forward(xp).reshape(n, -1), labels)
    xm = x.copy()
    xm[idx] -= eps
    lm, _ = cross_entropy(layer.forward(xm).reshape(n, -1), labels)
    numeric = (lp - lm) / (2 * eps)
    assert numeric == pytest.approx(float(dx[idx]), abs=2e-2, rel=5e-2)


class TestConv2D:
    def test_out_shape(self):
        layer = Conv2D(3, 8, 5)
        assert layer.out_shape((3, 16, 16)) == (8, 12, 12)

    def test_forward_shape(self, rng):
        layer = Conv2D(2, 4, 3, rng=rng)
        x = rng.standard_normal((5, 2, 8, 8)).astype(np.float32)
        assert layer.forward(x).shape == (5, 4, 6, 6)

    def test_channel_mismatch(self, rng):
        layer = Conv2D(2, 4, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(rng.standard_normal((1, 3, 8, 8)).astype(np.float32))

    def test_weight_grad_check(self, rng):
        layer = Conv2D(2, 3, 3, rng=rng)
        x = rng.standard_normal((4, 2, 6, 6)).astype(np.float32)
        numerical_grad_check(layer, x, "weight", (1, 0, 2, 1))

    def test_bias_grad_check(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        x = rng.standard_normal((4, 1, 6, 6)).astype(np.float32)
        numerical_grad_check(layer, x, "bias", (1,))

    def test_input_grad_check(self, rng):
        layer = Conv2D(2, 3, 3, rng=rng)
        x = rng.standard_normal((3, 2, 6, 6)).astype(np.float32)
        numerical_input_grad_check(layer, x)

    def test_strided_padded_grad_check(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, pad=1, rng=rng)
        x = rng.standard_normal((3, 1, 7, 7)).astype(np.float32)
        numerical_grad_check(layer, x, "weight", (0, 0, 1, 1))

    def test_backward_before_forward_rejected(self, rng):
        with pytest.raises(ShapeError):
            Conv2D(1, 1, 3, rng=rng).backward(np.zeros((1, 1, 1, 1), dtype=np.float32))

    def test_n_params(self):
        assert Conv2D(3, 8, 5).n_params() == 8 * 3 * 25 + 8


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_meanpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MeanPool2D(2).forward(x)
        assert np.array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_channels_independent(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = MaxPool2D(2).forward(x)
        for c in range(3):
            solo = MaxPool2D(2).forward(x[:, c : c + 1])
            assert np.array_equal(out[:, c], solo[:, 0])

    def test_maxpool_grad_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        layer = MaxPool2D(2)
        layer.forward(x, train=True)
        grad = np.ones((1, 1, 2, 2), dtype=np.float32)
        dx = layer.backward(grad)
        assert dx[0, 0, 1, 1] == 1  # value 5 was the max of its window
        assert dx[0, 0, 0, 0] == 0

    def test_meanpool_grad_spreads(self):
        layer = MeanPool2D(2)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        layer.forward(x, train=True)
        dx = layer.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert np.allclose(dx, 0.25)

    def test_maxpool_input_grad_check(self, rng):
        layer = MaxPool2D(2)
        x = rng.standard_normal((3, 2, 6, 6)).astype(np.float32)
        numerical_input_grad_check(layer, x)

    def test_out_shape(self):
        assert MaxPool2D(2).out_shape((6, 12, 12)) == (6, 6, 6)


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear(8, 4, rng=rng)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        assert np.allclose(layer.forward(x), x @ layer.weight.T + layer.bias, atol=1e-6)

    def test_weight_grad_check(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        numerical_grad_check(layer, x, "weight", (2, 3))

    def test_bias_grad_check(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        numerical_grad_check(layer, x, "bias", (0,))

    def test_input_grad_check(self, rng):
        layer = Linear(6, 4, rng=rng)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        numerical_input_grad_check(layer, x)

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ShapeError):
            Linear(6, 4, rng=rng).forward(rng.standard_normal((3, 7)).astype(np.float32))


class TestActivations:
    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.standard_normal((2, 3)).astype(np.float32) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_relu_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]], dtype=np.float32))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_tanh_grad(self, rng):
        layer = Tanh()
        x = rng.standard_normal((4, 3)).astype(np.float32)
        numerical_input_grad_check(layer, x)

    def test_relu_grad_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        layer.forward(x, train=True)
        dx = layer.backward(np.ones_like(x))
        assert np.array_equal(dx, [[0.0, 1.0]])

    def test_activation_fn_lookup(self):
        assert activation_fn("relu")(np.float32(-3)) == 0
        assert activation_fn(None)(5) == 5
        with pytest.raises(ValueError):
            activation_fn("gelu")

    def test_make_activation(self):
        assert make_activation(None) is None
        assert isinstance(make_activation("tanh"), Tanh)


class TestFlatten:
    def test_channels_innermost_order(self):
        # (N, C, H, W) -> pixel-major, channel-minor: the stream order of
        # the dataflow pipeline entering the FC core.
        x = np.arange(2 * 3 * 2 * 2, dtype=np.float32).reshape(2, 3, 2, 2)
        out = Flatten().forward(x)
        assert np.array_equal(out[0, :3], x[0, :, 0, 0])

    def test_roundtrip_via_backward(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        out = layer.forward(x, train=True)
        back = layer.backward(out)
        assert np.array_equal(back, x)

    def test_out_shape(self):
        assert Flatten().out_shape((16, 2, 2)) == (64,)
