"""Unit tests for log-softmax (Eq. 3) and cross-entropy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ShapeError
from repro.nn import cross_entropy, log_softmax, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((5, 10)).astype(np.float32))
        assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-5)

    def test_values_in_unit_interval(self, rng):
        p = softmax(rng.standard_normal((5, 10)).astype(np.float32) * 20)
        assert np.all(p >= 0) and np.all(p <= 1)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 0.0]], dtype=np.float32))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        assert np.allclose(softmax(x), softmax(x + 100), atol=1e-5)

    @settings(max_examples=30)
    @given(arrays(np.float32, (4, 6), elements=st.floats(-50, 50, width=32)))
    def test_property_eq3_normalization(self, x):
        p = softmax(x)
        assert np.all(p >= 0) and np.all(p <= 1 + 1e-6)
        assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-4)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[20.0, 0.0], [0.0, 20.0]], dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((3, 10), dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0, 5, 9]))
        assert loss == pytest.approx(np.log(10), rel=1e-5)

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.standard_normal((4, 5)).astype(np.float32)
        _, grad = cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert np.allclose(grad.sum(axis=-1), 0.0, atol=1e-6)

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.standard_normal((2, 4)).astype(np.float64)
        labels = np.array([1, 3])
        _, grad = cross_entropy(logits.astype(np.float32), labels)
        eps = 1e-4
        lp = logits.copy()
        lp[0, 2] += eps
        lm = logits.copy()
        lm[0, 2] -= eps
        num = (
            cross_entropy(lp.astype(np.float32), labels)[0]
            - cross_entropy(lm.astype(np.float32), labels)[0]
        ) / (2 * eps)
        assert num == pytest.approx(float(grad[0, 2]), abs=1e-3)

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros((2, 3), dtype=np.float32), np.array([0, 3]))

    def test_label_shape_rejected(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros((2, 3), dtype=np.float32), np.array([0]))

    def test_logits_must_be_2d(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros(3, dtype=np.float32), np.array([0]))

    def test_log_softmax_is_log_of_softmax(self, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        assert np.allclose(log_softmax(x), np.log(softmax(x)), atol=1e-5)
