"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import accuracy, confusion_matrix, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([1, 2, 0]), np.array([1, 2, 3])) == pytest.approx(2 / 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        m = confusion_matrix(np.array([0, 1, 2]), np.array([0, 1, 2]), 3)
        assert np.array_equal(m, np.eye(3, dtype=np.int64))

    def test_off_diagonal_errors(self):
        m = confusion_matrix(np.array([1, 1]), np.array([0, 0]), 2)
        assert m[0, 1] == 2 and m.sum() == 2

    def test_total_equals_samples(self, rng):
        pred = rng.integers(0, 4, 50)
        true = rng.integers(0, 4, 50)
        assert confusion_matrix(pred, true, 4).sum() == 50

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestTopK:
    def test_top1_equals_accuracy(self, rng):
        logits = rng.standard_normal((20, 5)).astype(np.float32)
        labels = rng.integers(0, 5, 20)
        assert top_k_accuracy(logits, labels, k=1) == accuracy(
            logits.argmax(axis=-1), labels
        )

    def test_topk_monotone_in_k(self, rng):
        logits = rng.standard_normal((30, 6)).astype(np.float32)
        labels = rng.integers(0, 6, 30)
        accs = [top_k_accuracy(logits, labels, k=k) for k in (1, 2, 4, 6)]
        assert accs == sorted(accs)

    def test_k_equals_classes_is_one(self, rng):
        logits = rng.standard_normal((10, 4)).astype(np.float32)
        labels = rng.integers(0, 4, 10)
        assert top_k_accuracy(logits, labels, k=4) == 1.0

    def test_invalid_k_rejected(self, rng):
        with pytest.raises(ShapeError):
            top_k_accuracy(np.zeros((2, 3), dtype=np.float32), np.array([0, 1]), k=4)
