"""Unit tests for the Sequential container."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Conv2D, Flatten, Linear, MaxPool2D, Sequential, Tanh


def lenet_ish(rng):
    return Sequential(
        [
            Conv2D(1, 4, 3, rng=rng),
            Tanh(),
            MaxPool2D(2),
            Flatten(),
            Linear(4 * 3 * 3, 5, rng=rng),
        ],
        in_shape=(1, 8, 8),
    )


class TestShapes:
    def test_shape_propagation(self, rng):
        net = lenet_ish(rng)
        assert net.shapes == [(1, 8, 8), (4, 6, 6), (4, 6, 6), (4, 3, 3), (36,), (5,)]

    def test_out_shape(self, rng):
        assert lenet_ish(rng).out_shape == (5,)

    def test_bad_chain_rejected_at_construction(self, rng):
        with pytest.raises(ShapeError):
            Sequential(
                [Conv2D(1, 4, 3, rng=rng), Linear(10, 5, rng=rng)],
                in_shape=(1, 8, 8),
            )

    def test_forward_validates_input_shape(self, rng):
        net = lenet_ish(rng)
        with pytest.raises(ShapeError):
            net.forward(np.zeros((2, 1, 9, 9), dtype=np.float32))


class TestInference:
    def test_predict_returns_argmax(self, rng):
        net = lenet_ish(rng)
        x = rng.standard_normal((4, 1, 8, 8)).astype(np.float32)
        logits = net.forward(x)
        assert np.array_equal(net.predict(x), logits.argmax(axis=-1))

    def test_predict_proba_normalized(self, rng):
        net = lenet_ish(rng)
        x = rng.standard_normal((4, 1, 8, 8)).astype(np.float32)
        p = net.predict_proba(x)
        assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-5)

    def test_n_params(self, rng):
        net = lenet_ish(rng)
        assert net.n_params() == (4 * 9 + 4) + (36 * 5 + 5)

    def test_parameters_iterates_all(self, rng):
        net = lenet_ish(rng)
        names = [(i, n) for i, n, _, _ in net.parameters()]
        assert names == [(0, "weight"), (0, "bias"), (4, "weight"), (4, "bias")]

    def test_summary_mentions_layers(self, rng):
        s = lenet_ish(rng).summary()
        assert "Conv2D" in s and "Linear" in s and "total params" in s
