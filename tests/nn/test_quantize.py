"""Unit tests for post-training fixed-point quantization."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hls import FixedPointFormat
from repro.nn import (
    Linear,
    Sequential,
    Tanh,
    quantize_network,
    with_quantized_activations,
)
from repro.nn.quantize import QuantizeActivations


def small_net(rng):
    return Sequential([Linear(4, 3, rng=rng), Tanh(), Linear(3, 2, rng=rng)], in_shape=(4,))


class TestQuantizeNetwork:
    def test_weights_become_representable(self, rng):
        net = small_net(rng)
        fmt = FixedPointFormat(16, 6)
        quantize_network(net, fmt)
        for layer in (net.layers[0], net.layers[2]):
            assert np.allclose(fmt.quantize(layer.weight), layer.weight, atol=1e-7)

    def test_report_counts_layers(self, rng):
        rep = quantize_network(small_net(rng), FixedPointFormat(16, 6))
        assert rep.n_quantized_layers == 2
        assert rep.fmt == "ap_fixed<16,6>"

    def test_error_bounded_by_half_lsb(self, rng):
        fmt = FixedPointFormat(12, 4)
        rep = quantize_network(small_net(rng), fmt)
        assert rep.max_weight_error <= fmt.scale / 2 + 1e-9

    def test_wide_format_changes_little(self, rng):
        net = small_net(rng)
        before = net.layers[0].weight.copy()
        quantize_network(net, FixedPointFormat(24, 6))
        assert np.allclose(before, net.layers[0].weight, atol=1e-4)

    def test_no_quantizable_layers_rejected(self):
        net = Sequential([Tanh()], in_shape=(4,))
        with pytest.raises(ConfigurationError):
            quantize_network(net, FixedPointFormat(16, 6))

    def test_coarse_quantization_degrades_more(self, rng):
        # Three identical networks (same seed), different quantizations.
        x = rng.standard_normal((20, 4)).astype(np.float32)
        net = small_net(np.random.default_rng(0))
        ref = net.forward(x)
        fine = small_net(np.random.default_rng(0))
        quantize_network(fine, FixedPointFormat(16, 6))
        coarse = small_net(np.random.default_rng(0))
        quantize_network(coarse, FixedPointFormat(4, 2))
        err_fine = np.abs(fine.forward(x) - ref).max()
        err_coarse = np.abs(coarse.forward(x) - ref).max()
        assert err_fine < err_coarse


class TestActivationQuantization:
    def test_layer_rounds_values(self):
        fmt = FixedPointFormat(8, 4)
        q = QuantizeActivations(fmt)
        x = np.array([[0.07]], dtype=np.float32)
        out = q.forward(x)
        assert float(out[0, 0]) == pytest.approx(1 / 16)

    def test_backward_is_straight_through(self):
        q = QuantizeActivations(FixedPointFormat(8, 4))
        g = np.ones((2, 2), dtype=np.float32)
        assert np.array_equal(q.backward(g), g)

    def test_wrapper_interleaves(self, rng):
        net = small_net(rng)
        qnet = with_quantized_activations(net, FixedPointFormat(16, 6))
        assert len(qnet.layers) == 2 * len(net.layers)
        x = rng.standard_normal((5, 4)).astype(np.float32)
        assert np.allclose(qnet.forward(x), net.forward(x), atol=1e-2)
