"""Unit tests for the SGD trainer."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Linear, Sequential, train_classifier
from repro.nn.train import SGD


def blobs(rng, n=120, d=6, k=3):
    x = rng.standard_normal((n, d)).astype(np.float32)
    y = rng.integers(0, k, n)
    for c in range(k):
        x[y == c, c] += 3.0
    return x, y


def linear_net(rng, d=6, k=3):
    return Sequential([Linear(d, k, rng=rng)], in_shape=(d,))


class TestSGD:
    def test_invalid_lr_rejected(self, rng):
        with pytest.raises(TrainingError):
            SGD(linear_net(rng), lr=0.0)

    def test_invalid_momentum_rejected(self, rng):
        with pytest.raises(TrainingError):
            SGD(linear_net(rng), momentum=1.0)

    def test_step_moves_parameters(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        from repro.nn.losses import cross_entropy

        logits = net.forward(x, train=True)
        _, grad = cross_entropy(logits, y)
        net.backward(grad)
        before = net.layers[0].weight.copy()
        SGD(net, lr=0.1).step()
        assert not np.array_equal(before, net.layers[0].weight)


class TestTrainClassifier:
    def test_loss_decreases(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        res = train_classifier(net, x, y, epochs=5, lr=0.1, seed=1)
        assert res.losses[-1] < res.losses[0]

    def test_separable_data_reaches_high_accuracy(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        res = train_classifier(net, x, y, epochs=10, lr=0.1, seed=1)
        assert res.train_accuracies[-1] > 0.9

    def test_test_accuracy_reported(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng, n=150)
        res = train_classifier(
            net, x[:100], y[:100], epochs=5, lr=0.1, x_test=x[100:], y_test=y[100:]
        )
        assert res.test_accuracy is not None and 0 <= res.test_accuracy <= 1

    def test_mismatched_xy_rejected(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        with pytest.raises(TrainingError):
            train_classifier(net, x, y[:-1])

    def test_invalid_epochs_rejected(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        with pytest.raises(TrainingError):
            train_classifier(net, x, y, epochs=0)

    def test_final_loss_requires_epochs(self):
        from repro.nn.train import TrainResult

        with pytest.raises(TrainingError):
            TrainResult().final_loss


class TestSchedulesAndEarlyStopping:
    def test_lr_decay_applied(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        # Just exercising the path: decayed run completes and learns.
        res = train_classifier(net, x, y, epochs=6, lr=0.2, lr_decay=0.5,
                               lr_decay_every=2, seed=1)
        assert res.losses[-1] < res.losses[0]

    def test_invalid_decay_rejected(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        with pytest.raises(TrainingError):
            train_classifier(net, x, y, lr_decay=0.0)
        with pytest.raises(TrainingError):
            train_classifier(net, x, y, lr_decay=1.5)

    def test_invalid_decay_interval_rejected(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        with pytest.raises(TrainingError):
            train_classifier(net, x, y, lr_decay_every=0)

    def test_early_stopping_halts(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        # Improvement threshold set impossibly high: the first epoch sets
        # the baseline, then `patience` stalled epochs stop the run.
        res = train_classifier(net, x, y, epochs=50, lr=0.1, patience=2,
                               min_improvement=1e9, seed=1)
        assert len(res.losses) == 3

    def test_invalid_patience_rejected(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        with pytest.raises(TrainingError):
            train_classifier(net, x, y, patience=0)

    def test_patience_does_not_stop_improving_runs(self, rng):
        net = linear_net(rng)
        x, y = blobs(rng)
        res = train_classifier(net, x, y, epochs=8, lr=0.1, patience=3, seed=1)
        assert len(res.losses) >= 4
