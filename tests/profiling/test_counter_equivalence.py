"""Native performance counters must not depend on how they are observed.

The counters (per-process fire/stall splits, per-channel beat stamps) are
part of the simulation's observable outcome, so the event engine must
report exactly the lock-step reference values, and attaching the
high-resolution tracer (which disables bulk cycle-skipping) must change
nothing. Scenarios with armed fault plans are exercised elsewhere; the
equivalence guarantee for *actor* stall counters is scoped to unfaulted
runs (see repro.dataflow.counters).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import random_weights, tiny_design, usps_design
from repro.core.builder import build_network
from repro.dataflow import ArraySource, DataflowGraph, FifoStage, ListSink, MapActor
from repro.dataflow.trace import Tracer
from tests.strategies import small_designs

SCHEDULERS = ("lockstep", "event")

STAMPS = (
    "first_push_cycle", "last_push_cycle", "first_pop_cycle", "last_pop_cycle",
)


def chain_factory():
    g = DataflowGraph("chain", default_capacity=2)
    src = g.add_actor(ArraySource("src", list(range(25)), interval=3))
    fifo = g.add_actor(FifoStage("fifo"))
    mp = g.add_actor(MapActor("map", lambda v: v + 1))
    snk = g.add_actor(ListSink("snk", count=25))
    g.connect(src, "out", fifo, "in", capacity=2)
    g.connect(fifo, "out", mp, "in", capacity=1)
    g.connect(mp, "out", snk, "in", capacity=1)
    return g


def run_counters(factory, scheduler, tracer=None):
    g = factory()
    return g.build_simulator(tracer=tracer, scheduler=scheduler).run()


class TestPrimitiveGraphs:
    def test_actor_and_channel_counters_identical(self):
        ref = run_counters(chain_factory, "lockstep")
        got = run_counters(chain_factory, "event")
        assert got.actor_stats == ref.actor_stats
        assert got.channel_stats == ref.channel_stats
        # The chain actually stalled somewhere, so the test is non-vacuous.
        total_stalled = sum(
            p["stalled_channel"]
            for procs in ref.actor_stats.values()
            for p in procs
        )
        assert total_stalled > 0

    def test_fires_identity(self):
        res = run_counters(chain_factory, "event")
        for procs in res.actor_stats.values():
            for p in procs:
                assert p["fires"] == p["lifetime"] - (
                    p["stalled_channel"] + p["stalled_gate"] + p["stalled_timer"]
                )
                assert p["fires"] >= 0
                # -1 = still alive at shutdown (daemon processes).
                assert -1 <= p["end_cycle"] <= res.cycles

    def test_channel_stamps_ordered(self):
        res = run_counters(chain_factory, "event")
        for st_ in res.channel_stats.values():
            assert 0 <= st_["first_push_cycle"] <= st_["last_push_cycle"]
            assert st_["first_push_cycle"] <= st_["first_pop_cycle"]
            assert st_["first_pop_cycle"] <= st_["last_pop_cycle"]

    def test_scheduler_stats_shape(self):
        ev = run_counters(chain_factory, "event")
        lk = run_counters(chain_factory, "lockstep")
        assert ev.scheduler_stats["scheduler"] == "event"
        assert lk.scheduler_stats["scheduler"] == "lockstep"
        assert (
            ev.scheduler_stats["executed_cycles"]
            + ev.scheduler_stats["skipped_cycles"]
            == ev.cycles
        )
        assert lk.scheduler_stats["executed_cycles"] == lk.cycles


class TestNetworks:
    @pytest.mark.parametrize("design_fn", [tiny_design, usps_design])
    def test_network_counters_identical(self, design_fn, rng):
        design = design_fn()
        weights = random_weights(design, seed=5)
        batch = rng.uniform(0, 1, (2,) + design.input_shape).astype(np.float32)
        outcomes = {}
        for sched in SCHEDULERS:
            built = build_network(design, weights, batch)
            res = built.run(scheduler=sched)
            outcomes[sched] = (res.cycles, res.actor_stats, res.channel_stats)
        ref, got = outcomes["lockstep"], outcomes["event"]
        assert got == ref

    def test_tracer_does_not_change_counters(self, rng):
        design = tiny_design()
        weights = random_weights(design, seed=5)
        batch = rng.uniform(0, 1, (2,) + design.input_shape).astype(np.float32)

        def run(tracer):
            built = build_network(design, weights, batch)
            res = built.run(tracer=tracer, scheduler="event")
            return res.cycles, res.actor_stats, res.channel_stats

        bare = run(None)
        traced = run(Tracer(sample_every=2))
        assert traced == bare


class TestPropertyInvariance:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(design=small_designs(), sample_every=st.sampled_from([None, 1, 5]))
    def test_counters_invariant_under_observation(self, design, sample_every):
        """Counters depend only on the design, never on scheduler/tracing."""
        weights = random_weights(design, seed=2)
        gen = np.random.default_rng(2)
        batch = gen.uniform(0, 1, (1,) + design.input_shape).astype(np.float32)
        outcomes = []
        for sched in SCHEDULERS:
            built = build_network(design, weights, batch)
            tracer = Tracer(sample_every) if sample_every else None
            res = built.run(tracer=tracer, scheduler=sched)
            outcomes.append(
                (res.cycles, res.actor_stats, res.channel_stats)
            )
        assert outcomes[0] == outcomes[1]
