"""`repro profile`: measured-vs-predicted report and Chrome-trace emission."""

import json

import pytest

from repro.core import tiny_design, usps_design
from repro.profiling import (
    chrome_trace,
    chrome_trace_json,
    profile_design,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def tiny_profile():
    return profile_design(tiny_design(), images=3, seed=0)


class TestMeasuredII:
    def test_tiny_within_tolerance(self, tiny_profile):
        assert tiny_profile.ok
        assert tiny_profile.cores
        for core in tiny_profile.cores:
            assert core["within_tolerance"], core
            assert core["rel_err"] <= 0.05
        assert tiny_profile.max_ii_error() <= 0.05

    def test_usps_within_tolerance(self):
        report = profile_design(usps_design(), images=2, seed=1)
        assert report.ok
        for core in report.cores:
            assert core["within_tolerance"], core

    def test_lockstep_matches_event(self, tiny_profile):
        lock = profile_design(tiny_design(), images=3, seed=0,
                              scheduler="lockstep")
        assert lock.cycles == tiny_profile.cycles
        assert [c["measured_ii"] for c in lock.cores] == [
            c["measured_ii"] for c in tiny_profile.cores
        ]

    def test_throughput_and_bottleneck(self, tiny_profile):
        t = tiny_profile.throughput
        assert t["interval_measured"] == t["interval_predicted"]
        b = tiny_profile.bottleneck
        assert b["measured"] == b["predicted"]
        assert tiny_profile.latency["fill_measured"] > 0
        assert tiny_profile.latency["drain_measured"] >= 0

    def test_utilization_from_counters(self, tiny_profile):
        util = tiny_profile.utilization
        assert util
        assert all(0.0 <= v <= 1.0 for v in util.values())
        # The DMA-bound bottleneck stage is the busiest actor family.
        assert any(a.startswith("dma_in") for a in util)

    def test_mismatch_flagged_at_tight_tolerance(self):
        # With a zero tolerance, any core whose fractional measured II
        # differs at all trips the rule; tiny matches Eq. 4 exactly, so
        # instead assert the diagnostic machinery by loosening nothing
        # and checking the rule is recorded as having run.
        report = profile_design(tiny_design(), images=2, seed=0)
        assert "PROFILE.II_MISMATCH" in report.analysis.rules_run


class TestReportSurface:
    def test_envelope(self, tiny_profile):
        d = json.loads(tiny_profile.to_json())
        assert d["schema_version"] == 1
        assert d["kind"] == "profile"
        assert d["design"] == "tiny"
        assert d["scheduler"] == "event"
        assert len(d["cores"]) == len(tiny_profile.cores)
        assert d["analysis"]["rules_run"] == ["PROFILE.II_MISMATCH"]

    def test_format_text(self, tiny_profile):
        text = tiny_profile.format_text()
        assert "Eq.4" in text or "Eq. 4" in text
        assert "bottleneck" in text
        assert tiny_profile.summary() in text

    def test_pilot_downscale_flag(self):
        report = profile_design(tiny_design(), images=1, seed=0, pilot=True)
        assert report.pilot
        assert report.design_name == "tiny"


class TestChromeTrace:
    def test_trace_document(self, tiny_profile):
        doc = chrome_trace(tiny_profile)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        for e in spans:
            assert e["dur"] >= 1 and e["ts"] >= 0
        # Round-trips as JSON.
        assert json.loads(chrome_trace_json(tiny_profile)) == doc

    def test_tracer_backend_adds_counter_tracks(self):
        report = profile_design(tiny_design(), images=2, seed=0,
                                sample_every=4)
        doc = chrome_trace(report)
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_write_chrome_trace(self, tiny_profile, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(tiny_profile, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
