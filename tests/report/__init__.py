"""Test package."""
