"""Unit tests for the experiment registry."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.report import all_experiments, banner, get_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {e.id for e in all_experiments()}
        assert {"fig4", "fig5", "fig6", "table1", "table2"} <= ids

    def test_lookup(self):
        e = get_experiment("table1")
        assert "resource" in e.title.lower()

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_paper_values_for_table2(self):
        e = get_experiment("table2")
        assert e.paper_values["tc2_images_s"] == 7809
        assert e.paper_values["speedup"] == 3.36

    def test_banner_mentions_id(self):
        assert "[fig6]" in banner("fig6")

    def test_bench_files_exist(self):
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for e in all_experiments():
            assert os.path.exists(os.path.join(root, e.bench)), e.bench
