"""Unit tests for ASCII plotting and CSV emission."""

import pytest

from repro.errors import ConfigurationError
from repro.report import ascii_plot, to_csv


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        p = ascii_plot([1, 2, 3], [("tc1", [3.0, 2.0, 1.0])], title="fig6")
        assert "fig6" in p and "* = tc1" in p

    def test_multiple_series_distinct_markers(self):
        p = ascii_plot([1, 2], [("a", [1.0, 2.0]), ("b", [2.0, 1.0])])
        assert "* = a" in p and "o = b" in p

    def test_y_extremes_labeled(self):
        p = ascii_plot([1, 2], [("s", [5.0, 10.0])])
        assert "10" in p and "5" in p

    def test_constant_series_ok(self):
        assert ascii_plot([1, 2], [("s", [1.0, 1.0])])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([1, 2], [("s", [1.0])])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([], [])


class TestCsv:
    def test_header_and_rows(self):
        c = to_csv(["a", "b"], [[1, 2.5]])
        assert c.splitlines() == ["a,b", "1,2.5"]

    def test_float_precision(self):
        c = to_csv(["v"], [[1.23456789]])
        assert "1.23457" in c

    def test_row_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            to_csv(["a", "b"], [[1]])
