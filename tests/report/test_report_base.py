"""The unified Report protocol: one envelope for every report object."""

import json

import pytest

from repro.core import random_weights, tiny_design
from repro.faults import faultsim, load_scenario, run_campaign
from repro.report import SCHEMA_VERSION, Report


class TestBase:
    def test_to_dict_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Report().to_dict()

    def test_envelope_merges_payload(self):
        class Mini(Report):
            kind = "mini"

            def to_dict(self):
                return {"x": 1}

        env = Mini().envelope()
        assert env == {"schema_version": SCHEMA_VERSION, "kind": "mini", "x": 1}
        assert json.loads(Mini().to_json()) == env


class TestMigratedReports:
    def test_simulation_result(self, rng):
        import numpy as np

        from repro.core.builder import build_network

        design = tiny_design()
        built = build_network(
            design,
            random_weights(design, seed=0),
            rng.uniform(0, 1, (1,) + design.input_shape).astype(np.float32),
        )
        res = built.run()
        d = json.loads(res.to_json())
        assert d["schema_version"] == SCHEMA_VERSION
        assert d["kind"] == "simulation"
        assert d["finished"] is True
        assert d["actor_stats"] and d["scheduler_stats"]

    def test_analysis_report(self):
        from repro.analysis import check_network

        d = json.loads(check_network(tiny_design()).to_json())
        assert d["schema_version"] == SCHEMA_VERSION
        assert d["kind"] == "analysis"
        # Pre-envelope consumers keep their top-level keys.
        assert d["design"] == "tiny" and d["ok"] and d["rules_run"]

    def test_fault_run_report(self):
        report = faultsim(tiny_design(), load_scenario("jitter"), images=1)
        # Mapping compatibility: old dict-style consumers still work.
        assert report["design"] == "tiny"
        assert "verdict" in report and len(report) > 5
        d = json.loads(report.to_json())
        assert d["schema_version"] == SCHEMA_VERSION
        assert d["kind"] == "faultsim"
        assert "stall_delta" in d
        assert "faultsim tiny/jitter" in report.summary()

    def test_campaign_report(self):
        summary = run_campaign(
            [("tiny", tiny_design())],
            [load_scenario("jitter")],
            seeds=[0],
            images=1,
        )
        assert summary["ok"] and summary["experiments"] == 1
        d = json.loads(summary.to_json())
        assert d["kind"] == "fault-campaign"
        assert d["runs"][0]["kind"] == "faultsim"
        assert d["stall_deltas"]["jitter"]["experiments"] == 1

    def test_profile_report(self):
        from repro.profiling import profile_design

        d = json.loads(profile_design(tiny_design(), images=2).to_json())
        assert d["schema_version"] == SCHEMA_VERSION
        assert d["kind"] == "profile"
