"""Unit tests for ASCII table rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.report import format_kv, format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        t = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in t and "4" in t

    def test_title(self):
        t = format_table(["x"], [[1]], title="Table I")
        assert t.startswith("=== Table I ===")

    def test_float_formatting(self):
        t = format_table(["v"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in t and "3.14159" not in t

    def test_alignment_consistent_width(self):
        t = format_table(["col", "x"], [["short", 1], ["a-much-longer-cell", 2]])
        lines = t.splitlines()
        assert len({len(l) for l in lines[:1] + lines[2:]}) == 1

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestFormatKv:
    def test_pairs_rendered(self):
        t = format_kv("Summary", [("interval", 256), ("fits", True)])
        assert "interval" in t and "256" in t and "Summary" in t

    def test_keys_aligned(self):
        t = format_kv("S", [("a", 1), ("longer-key", 2)])
        lines = t.splitlines()[1:]
        assert all(" : " in l for l in lines)
        assert len({l.index(":") for l in lines}) == 1
