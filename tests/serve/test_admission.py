"""Admission policy: knee math, planner invariants, measured replay."""

import pytest

from repro.core import network_perf, tiny_design, usps_design
from repro.errors import ConfigurationError
from repro.serve import (
    AdmissionConfig,
    admission_config,
    convergence_knee,
    cycles_to_us,
    plan_batches,
    replay_batches,
)


class TestConvergenceKnee:
    def test_knee_satisfies_eq4_tolerance(self):
        # Eq. 4: mean(B) = II + (fill - II)/B; at B = knee the amortized
        # fill must be within tolerance of II.
        for design in (tiny_design(), usps_design()):
            perf = network_perf(design)
            knee = convergence_knee(design, tolerance=0.05, perf=perf)
            mean = perf.mean_cycles_per_image(knee)
            assert mean <= perf.interval * 1.05 + 1e-9

    def test_knee_floors_at_layer_count(self):
        design = tiny_design()
        # With a huge tolerance the amortization bound collapses to 1;
        # the pipeline depth must still floor the knee.
        knee = convergence_knee(design, tolerance=100.0)
        assert knee == design.n_layers

    def test_tighter_tolerance_grows_knee(self):
        design = usps_design()
        assert convergence_knee(design, 0.01) > convergence_knee(design, 0.1)

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ConfigurationError):
            convergence_knee(tiny_design(), tolerance=0.0)


class TestAdmissionConfig:
    def test_defaults_derived_from_model(self):
        design = usps_design()
        perf = network_perf(design)
        cfg = admission_config(design, perf=perf)
        knee = convergence_knee(design, perf=perf)
        assert cfg.target_batch == knee
        assert cfg.max_batch == max(2 * knee, 8)
        assert cfg.max_wait_us == pytest.approx(
            cycles_to_us(perf.batch_cycles(cfg.target_batch))
        )

    def test_max_batch_caps_target(self):
        cfg = admission_config(usps_design(), max_batch=4)
        assert cfg.target_batch == 4 and cfg.max_batch == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(target_batch=0, max_batch=4, max_wait_us=10)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(target_batch=4, max_batch=2, max_wait_us=10)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(target_batch=2, max_batch=4, max_wait_us=0)


def flat_service(_batch: int) -> float:
    return 100.0


class TestPlanner:
    def test_every_request_served_exactly_once(self):
        arrivals = [float(10 * i) for i in range(37)]
        cfg = AdmissionConfig(target_batch=5, max_batch=8, max_wait_us=200)
        batches = plan_batches(arrivals, cfg, flat_service, n_replicas=3)
        served = [i for b in batches for i in b.indices]
        assert sorted(served) == list(range(37))
        assert len(served) == len(set(served))

    def test_dispatch_never_precedes_members(self):
        arrivals = [float(7 * i) for i in range(20)]
        cfg = AdmissionConfig(target_batch=4, max_batch=6, max_wait_us=50)
        for b in plan_batches(arrivals, cfg, flat_service, 2):
            assert b.dispatch_us >= max(arrivals[i] for i in b.indices)

    def test_replica_never_overlaps(self):
        arrivals = [float(i) for i in range(50)]
        cfg = AdmissionConfig(target_batch=4, max_batch=4, max_wait_us=10)
        batches = plan_batches(arrivals, cfg, flat_service, 2)
        for replica in (0, 1):
            mine = sorted(
                (b for b in batches if b.replica == replica),
                key=lambda b: b.dispatch_us,
            )
            for prev, cur in zip(mine, mine[1:]):
                assert cur.dispatch_us >= prev.done_us

    def test_target_trigger_seals_at_fill(self):
        # Requests arrive every 10 us, target 3, generous deadline: each
        # batch seals exactly when its 3rd member arrives.
        arrivals = [float(10 * i) for i in range(6)]
        cfg = AdmissionConfig(target_batch=3, max_batch=3, max_wait_us=1e6)
        batches = plan_batches(arrivals, cfg, flat_service, n_replicas=2)
        assert [b.indices for b in batches] == [(0, 1, 2), (3, 4, 5)]
        assert batches[0].dispatch_us == 20.0
        assert batches[1].dispatch_us == 50.0

    def test_deadline_trigger_seals_partial_batch(self):
        # A lone request must not wait past max_wait for peers that
        # never come.
        arrivals = [0.0, 5000.0]
        cfg = AdmissionConfig(target_batch=4, max_batch=4, max_wait_us=100)
        batches = plan_batches(arrivals, cfg, flat_service, n_replicas=1)
        assert batches[0].indices == (0,)
        assert batches[0].dispatch_us == 100.0

    def test_backlog_drained_up_to_max_batch(self):
        # All requests arrive at once: sealing is greedy up to the cap
        # (target is a trigger, not a size limit), remainder follows.
        arrivals = [0.0] * 10
        cfg = AdmissionConfig(target_batch=2, max_batch=8, max_wait_us=10)
        batches = plan_batches(arrivals, cfg, flat_service, n_replicas=1)
        assert [b.size for b in batches] == [8, 2]

    def test_deterministic(self):
        arrivals = [float(3 * i) for i in range(40)]
        cfg = AdmissionConfig(target_batch=5, max_batch=10, max_wait_us=40)
        a = plan_batches(arrivals, cfg, flat_service, 3)
        b = plan_batches(arrivals, cfg, flat_service, 3)
        assert a == b

    def test_rejects_descending_arrivals(self):
        cfg = AdmissionConfig(target_batch=1, max_batch=1, max_wait_us=1)
        with pytest.raises(ConfigurationError, match="ascending"):
            plan_batches([5.0, 1.0], cfg, flat_service, 1)


class TestReplay:
    def test_composition_preserved_times_rescaled(self):
        arrivals = [float(10 * i) for i in range(12)]
        cfg = AdmissionConfig(target_batch=4, max_batch=4, max_wait_us=100)
        planned = plan_batches(arrivals, cfg, flat_service, 2)
        measured = [1000.0] * len(planned)  # 10x slower than modeled
        replayed = replay_batches(planned, arrivals, measured, 2)
        assert [b.indices for b in replayed] == [b.indices for b in planned]
        assert [b.replica for b in replayed] == [b.replica for b in planned]
        assert all(b.service_us == 1000.0 for b in replayed)
        for b in replayed:
            assert b.dispatch_us >= max(arrivals[i] for i in b.indices)

    def test_replay_with_modeled_times_matches_plan(self):
        # Replaying the plan's own service times must reproduce its
        # timeline (same fixed point).
        arrivals = [float(25 * i) for i in range(9)]
        cfg = AdmissionConfig(target_batch=3, max_batch=3, max_wait_us=30)
        planned = plan_batches(arrivals, cfg, flat_service, 2)
        replayed = replay_batches(
            planned, arrivals, [b.service_us for b in planned], 2
        )
        assert [b.done_us for b in replayed] <= [b.done_us for b in planned]

    def test_length_mismatch_rejected(self):
        arrivals = [0.0, 1.0]
        cfg = AdmissionConfig(target_batch=1, max_batch=1, max_wait_us=1)
        planned = plan_batches(arrivals, cfg, flat_service, 1)
        with pytest.raises(ConfigurationError, match="measured"):
            replay_batches(planned, arrivals, [1.0], 1)
