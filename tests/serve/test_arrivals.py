"""Arrival schedules: determinism, distribution shape, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import arrival_schedule


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a = arrival_schedule(64, 1000.0, dist="poisson", seed=42)
        b = arrival_schedule(64, 1000.0, dist="poisson", seed=42)
        assert a == b

    def test_different_seed_differs(self):
        a = arrival_schedule(64, 1000.0, dist="poisson", seed=1)
        b = arrival_schedule(64, 1000.0, dist="poisson", seed=2)
        assert a != b

    def test_uniform_is_seed_independent(self):
        a = arrival_schedule(16, 500.0, dist="uniform", seed=1)
        b = arrival_schedule(16, 500.0, dist="uniform", seed=99)
        assert a == b


class TestShape:
    def test_ascending_from_zero(self):
        sched = arrival_schedule(100, 2000.0, dist="poisson", seed=0)
        assert sched[0] == 0.0
        assert all(b >= a for a, b in zip(sched, sched[1:]))

    def test_uniform_spacing(self):
        sched = arrival_schedule(5, 1000.0, dist="uniform")
        assert sched == [0.0, 1000.0, 2000.0, 3000.0, 4000.0]

    def test_poisson_mean_gap_approximates_rate(self):
        n, rate = 4000, 1000.0
        sched = arrival_schedule(n, rate, dist="poisson", seed=7)
        mean_gap = sched[-1] / (n - 1)
        assert mean_gap == pytest.approx(1e6 / rate, rel=0.1)


class TestValidation:
    def test_rejects_zero_requests(self):
        with pytest.raises(ConfigurationError, match="request"):
            arrival_schedule(0, 100.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError, match="rate"):
            arrival_schedule(4, 0.0)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ConfigurationError, match="distribution"):
            arrival_schedule(4, 100.0, dist="bursty")
