"""Fig. 6 / Eq. 4 convergence, property-tested on measured cycles.

The paper's claim: per-image cost ``(fill + (B-1)·II) / B`` starts at
the full fill latency for B=1 and converges to the bottleneck II as the
batch grows past the pipeline depth. These tests sweep the batch across
the knee on the *event* engine — genuinely measured cycle counts, not
the compiled engine's modeled timing — and assert both sides of the
knee: small batches pay the fill, large batches amortize it to within
tolerance of II.
"""

import numpy as np
import pytest

from repro.core import network_perf, random_weights, tiny_design, usps_design
from repro.core.builder import build_network
from repro.serve import convergence_knee

TOLERANCE = 0.05

DESIGNS = {
    "tiny": tiny_design,
    "usps": usps_design,
}


def measured_per_image_cycles(design, batch, seed=0):
    weights = random_weights(design, seed=seed)
    rng = np.random.default_rng(seed)
    images = rng.uniform(0, 1, (batch,) + design.input_shape).astype(
        np.float32
    )
    built = build_network(design, weights, images)
    result = built.run(scheduler="event")
    assert result.finished
    return result.cycles / batch


@pytest.mark.parametrize("name", sorted(DESIGNS))
class TestAcrossTheKnee:
    def test_small_batch_pays_the_fill(self, name):
        # At B <= #layers the pipeline never fully fills: per-image cost
        # must still sit well above the bottleneck II (by at least half
        # the amortized fill gap Eq. 4 predicts at that batch).
        design = DESIGNS[name]()
        perf = network_perf(design)
        batch = max(design.n_layers // 2, 1)
        measured = measured_per_image_cycles(design, batch)
        predicted_gap = (perf.fill_latency - perf.interval) / batch
        assert measured >= perf.interval + predicted_gap / 2

    def test_large_batch_converges_to_ii(self, name):
        # At B >> #layers (twice the knee) the measured per-image cost
        # is within tolerance of the Eq. 4 bottleneck II.
        design = DESIGNS[name]()
        perf = network_perf(design)
        batch = 2 * convergence_knee(design, tolerance=TOLERANCE, perf=perf)
        measured = measured_per_image_cycles(design, batch)
        rel = (measured - perf.interval) / perf.interval
        assert rel >= 0  # fill can only add cycles
        assert rel <= TOLERANCE

    def test_monotone_convergence(self, name):
        # Per-image cost is non-increasing in batch size (Eq. 4 is
        # monotone; the measured curve must be too, modulo nothing —
        # the simulator is deterministic).
        design = DESIGNS[name]()
        knee = convergence_knee(design, tolerance=TOLERANCE)
        batches = sorted({1, design.n_layers, knee, 2 * knee})
        costs = [measured_per_image_cycles(design, b) for b in batches]
        assert all(b <= a * 1.001 for a, b in zip(costs, costs[1:]))

    def test_eq4_brackets_measurement_everywhere(self, name):
        # At every swept batch, Eq. 4 brackets the measurement: the
        # bottleneck II is a hard floor, and the model's fill latency is
        # a (conservative) ceiling, so measured per-image cost lies in
        # [II, II + (fill - II)/B]. Past the knee the bracket itself is
        # tight, which is the convergence claim.
        design = DESIGNS[name]()
        perf = network_perf(design)
        knee = convergence_knee(design, tolerance=TOLERANCE, perf=perf)
        for batch in sorted({1, design.n_layers, knee, 2 * knee}):
            measured = measured_per_image_cycles(design, batch)
            predicted = perf.mean_cycles_per_image(batch)
            assert perf.interval <= measured <= predicted * 1.001, (
                f"{name} batch {batch}: {measured} outside "
                f"[{perf.interval}, {predicted}]"
            )
