"""End-to-end loadtest: determinism, digest fidelity, chaos cross-check.

Runs use the inline fleet (one core, no process spawn) except one
process-mode smoke; designs are usps/tiny to keep event-engine probes
cheap.
"""

import pytest

from repro.core import tiny_design, usps_design
from repro.errors import ConfigurationError
from repro.serve import run_loadtest
from repro.serve.report import ServeReport, latency_stats, percentile


def strip_wall(envelope: dict) -> dict:
    """Everything a loadtest reports except host-side wall timings."""
    out = dict(envelope)
    out.pop("wall")
    out.pop("plan_cache")
    return out


class TestEndToEnd:
    def test_report_shape_and_verdict(self):
        rep = run_loadtest(
            usps_design(), requests=16, rate=200000, seed=2,
            replicas=2, mode="inline",
        )
        assert rep.ok, rep.failures
        env = rep.envelope()
        assert env["kind"] == "serve" and env["schema_version"] == 1
        assert env["digests"]["matched"] == 16
        assert env["latency"]["p50_us"] <= env["latency"]["p99_us"]
        assert env["images_per_sec"] > 0
        assert sum(
            size_count[1] * int(size_count[0])
            for size_count in [
                (k, v) for k, v in env["batch_histogram"].items()
            ]
        ) == 16
        assert "measured_per_image" in env["knee"]
        text = rep.format_text()
        assert "serving loadtest" in text and "batch sizes" in text

    def test_deterministic_replay(self):
        # Satellite contract: same seed -> identical arrival schedule,
        # batch composition, latencies, digests. Everything except host
        # wall time must be bit-identical.
        kwargs = dict(
            requests=20, rate=250000, seed=9, replicas=2, mode="inline",
        )
        a = run_loadtest(usps_design(), **kwargs)
        b = run_loadtest(usps_design(), **kwargs)
        assert strip_wall(a.envelope()) == strip_wall(b.envelope())

    def test_seed_changes_the_run(self):
        kwargs = dict(requests=20, rate=250000, replicas=2, mode="inline",
                      probe=False, verify_digests=False)
        a = run_loadtest(usps_design(), seed=1, **kwargs)
        b = run_loadtest(usps_design(), seed=2, **kwargs)
        assert a.envelope()["latency"] != b.envelope()["latency"]

    def test_digest_verification_covers_every_request(self):
        rep = run_loadtest(
            tiny_design(), requests=10, rate=500000, seed=0,
            replicas=2, mode="inline", probe=False,
        )
        assert rep.digests["checked"] == 10
        assert rep.digests["matched"] == 10
        assert rep.digests["mismatched"] == []

    def test_knee_probe_converges(self):
        rep = run_loadtest(
            usps_design(), requests=8, rate=100000, seed=0,
            replicas=1, mode="inline", verify_digests=False,
        )
        assert rep.ok, rep.failures
        assert abs(rep.knee["rel_err"]) <= 0.05

    def test_rejects_zero_requests(self):
        with pytest.raises(ConfigurationError):
            run_loadtest(tiny_design(), requests=0)


class TestChaos:
    def test_throttle_matches_analytical_model(self):
        rep = run_loadtest(
            usps_design(), requests=24, rate=300000, seed=1,
            replicas=2, mode="inline", fault="dma-throttle", probe=False,
        )
        assert rep.ok, rep.failures
        chaos = rep.chaos
        # period=1 preset: the analytical prediction is seed-exact.
        assert chaos["measured_interval"] == chaos["predicted_interval"]
        assert chaos["rel_err"] == 0.0
        assert chaos["predicted_degradation"] > 1.0
        assert rep.scheduler == "compiled+event"

    def test_chaos_inflates_tail_latency(self):
        # Force every replica-0 batch to be substantial so the faulted
        # service time lands in the tail.
        rep = run_loadtest(
            tiny_design(), requests=40, rate=2_000_000, seed=3,
            replicas=1, mode="inline", fault="dma-throttle", probe=False,
        )
        assert rep.chaos["faulted_batches"] >= 1
        assert rep.chaos["p99_ratio"] > 1.0

    def test_clean_run_has_no_chaos_block(self):
        rep = run_loadtest(
            tiny_design(), requests=6, rate=100000, mode="inline",
            probe=False, verify_digests=False,
        )
        assert rep.chaos is None and rep.envelope()["chaos"] is None


class TestProcessModeSmoke:
    def test_process_fleet_matches_inline(self):
        kwargs = dict(
            requests=10, rate=200000, seed=4, replicas=2, probe=False,
        )
        inline = run_loadtest(usps_design(), mode="inline", **kwargs)
        proc = run_loadtest(usps_design(), mode="process", **kwargs)
        assert proc.ok, proc.failures
        assert strip_wall(proc.envelope())["latency"] == (
            strip_wall(inline.envelope())["latency"]
        )
        assert proc.digests == inline.digests


class TestReportHelpers:
    def test_percentile_nearest_rank(self):
        vals = sorted(range(1, 101))
        assert percentile(vals, 50) == 50
        assert percentile(vals, 99) == 99
        assert percentile(vals, 100) == 100
        assert percentile([7.0], 50) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_stats_keys(self):
        stats = latency_stats([3.0, 1.0, 2.0])
        assert stats["p50_us"] == 2.0
        assert stats["max_us"] == 3.0
        assert set(stats) == {"p50_us", "p95_us", "p99_us", "mean_us",
                              "max_us"}

    def test_report_is_a_report(self):
        rep = run_loadtest(
            tiny_design(), requests=4, rate=100000, mode="inline",
            probe=False, verify_digests=False,
        )
        assert isinstance(rep, ServeReport)
        assert "serve" in rep.summary()
