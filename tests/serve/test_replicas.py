"""The replica fleet: warm start, digest fidelity, chaos arming.

Process-mode tests spawn real worker processes — kept to a minimum and
sized small (usps / tiny designs) so the suite stays fast on one core.
"""

import numpy as np
import pytest

from repro.core import random_weights, tiny_design, usps_design
from repro.core.builder import build_network
from repro.dataflow.digest import stable_digest
from repro.errors import ConfigurationError
from repro.faults import load_scenario
from repro.serve import ReplicaFleet, request_image, run_replica_batch


def reference_digest(design, seed, index):
    weights = random_weights(design, seed=seed)
    built = build_network(
        design, weights, np.stack([request_image(design, seed, index)])
    )
    built.run(scheduler="compiled")
    return stable_digest(built.outputs()[0])


class TestRequestImages:
    def test_pure_function_of_seed_and_index(self):
        design = tiny_design()
        a = request_image(design, 5, 9)
        b = request_image(design, 5, 9)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, request_image(design, 5, 10))
        assert not np.array_equal(a, request_image(design, 6, 9))

    def test_shape_and_dtype(self):
        design = usps_design()
        img = request_image(design, 0, 0)
        assert img.shape == design.input_shape
        assert img.dtype == np.float32


class TestRunReplicaBatch:
    def test_batched_digest_matches_single_shot(self):
        design = usps_design()
        res = run_replica_batch(design, 3, [4, 5, 6])
        assert res["digests"][1] == reference_digest(design, 3, 5)
        assert res["scheduler"] == "compiled"
        assert len(res["completion_cycles"]) == 3

    def test_scenario_forces_event_engine_and_keeps_values(self):
        design = usps_design()
        clean = run_replica_batch(design, 3, [1, 2, 3])
        faulted = run_replica_batch(
            design, 3, [1, 2, 3], scenario=load_scenario("dma-throttle")
        )
        assert faulted["scheduler"] == "event"
        assert faulted["faulted"] is True
        # Timing-only fault: slower, same values.
        assert faulted["digests"] == clean["digests"]
        assert faulted["measured_interval"] > clean["measured_interval"]

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_replica_batch(tiny_design(), 0, [])


class TestInlineFleet:
    def test_submit_and_digest_fidelity(self):
        design = tiny_design()
        with ReplicaFleet(design, 2, seed=11, mode="inline") as fleet:
            res = fleet.submit(1, [0, 1]).result()
        assert res["digests"][0] == reference_digest(design, 11, 0)

    def test_warm_touches_every_replica(self):
        with ReplicaFleet(tiny_design(), 3, mode="inline") as fleet:
            warm = fleet.warm()
        assert len(warm) == 3
        assert all(r["scheduler"] == "compiled" for r in warm)

    def test_arm_disarm_cycle(self):
        design = tiny_design()
        scenario = load_scenario("dma-throttle")
        with ReplicaFleet(design, 2, mode="inline") as fleet:
            fleet.arm(1, scenario)
            assert fleet.armed(1) is scenario and fleet.armed(0) is None
            faulted = fleet.submit(1, [0, 1, 2, 3]).result()
            clean = fleet.submit(0, [0, 1, 2, 3]).result()
            fleet.disarm(1)
            assert fleet.armed(1) is None
        assert faulted["faulted"] and not clean["faulted"]
        assert faulted["digests"] == clean["digests"]

    def test_replica_bounds_checked(self):
        with ReplicaFleet(tiny_design(), 2, mode="inline") as fleet:
            with pytest.raises(ConfigurationError, match="out of range"):
                fleet.submit(2, [0])
        with pytest.raises(ConfigurationError):
            ReplicaFleet(tiny_design(), 0)
        with pytest.raises(ConfigurationError):
            ReplicaFleet(tiny_design(), 1, mode="threads")


class TestProcessFleet:
    def test_workers_are_isolated_and_bit_identical(self):
        design = usps_design()
        with ReplicaFleet(design, 2, seed=3, mode="process") as fleet:
            warm = fleet.warm()
            res0 = fleet.submit(0, [7, 8]).result()
            res1 = fleet.submit(1, [7, 8]).result()
        # Two distinct worker processes...
        assert res0["pid"] != res1["pid"]
        # ...bit-identical results, matching the in-process reference.
        assert res0["digests"] == res1["digests"]
        assert res0["digests"][0] == reference_digest(design, 3, 7)
        # Warm start: the request batch after warm() hits the verdict
        # cache in its worker (one analysis per process, ever).
        assert all(w["plan_cache"]["analysis_misses"] == 1 for w in warm)
        assert res0["plan_cache"]["analysis_misses"] == 1
