"""The live asyncio server: concurrent submits, batching, TCP front-end.

No pytest-asyncio in the environment: each test drives its own event
loop with ``asyncio.run``. The inline fleet keeps everything
in-process; batching behaviour is steered with explicit target/wait
knobs rather than timing luck.
"""

import asyncio
import json

import pytest

from repro.core import tiny_design, usps_design
from repro.errors import ConfigurationError
from repro.serve import InferenceServer, serve_tcp, single_shot_digests


def make_server(design, **kw):
    kw.setdefault("replicas", 2)
    kw.setdefault("mode", "inline")
    kw.setdefault("seed", 4)
    return InferenceServer(design, **kw)


class TestSubmit:
    def test_concurrent_submits_batch_and_match_single_shot(self):
        design = usps_design()

        async def main():
            async with make_server(design, target_batch=4,
                                   max_wait_s=0.25) as server:
                return await asyncio.gather(
                    *(server.submit(i) for i in range(8))
                )

        results = asyncio.run(main())
        refs = single_shot_digests(design, 4, list(range(8)))
        for r in results:
            assert r["digest"] == refs[r["request"]]
        # Admission coalesced: strictly fewer batches than requests.
        assert max(r["batch"] for r in results) >= 4

    def test_lone_request_released_by_deadline(self):
        async def main():
            async with make_server(tiny_design(), target_batch=8,
                                   max_wait_s=0.01) as server:
                return await server.submit(0)

        r = asyncio.run(main())
        assert r["batch"] == 1
        assert r["queue_us"] >= 0.01 * 1e6 * 0.5  # waited for the deadline

    def test_response_carries_timing_fields(self):
        async def main():
            async with make_server(tiny_design(), target_batch=1) as server:
                return await server.submit(3)

        r = asyncio.run(main())
        assert {"request", "digest", "batch", "replica", "scheduler",
                "cycles", "queue_us", "service_us"} <= set(r)
        assert r["scheduler"] == "compiled"
        assert r["cycles"] > 0 and r["service_us"] > 0

    def test_stats_track_served(self):
        async def main():
            async with make_server(tiny_design(), target_batch=2) as server:
                await asyncio.gather(*(server.submit(i) for i in range(4)))
                return server.stats()

        stats = asyncio.run(main())
        assert stats["served"] == 4
        assert stats["queued"] == 0
        assert stats["batches"] >= 1

    def test_submit_before_start_rejected(self):
        server = make_server(tiny_design())

        async def main():
            await server.submit(0)

        with pytest.raises(ConfigurationError, match="not started"):
            asyncio.run(main())

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            make_server(tiny_design(), max_wait_s=0.0)
        with pytest.raises(ConfigurationError):
            make_server(tiny_design(), target_batch=8, max_batch=4)


class TestTcp:
    def test_json_lines_round_trip(self):
        design = tiny_design()

        async def main():
            async with make_server(design, target_batch=1) as server:
                tcp = await serve_tcp(server, port=0)
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(b'{"index": 5, "id": "req-5"}\n')
                writer.write(b'not json\n')
                writer.write(b'{"nope": 1}\n')
                writer.write(b'{"cmd": "stats"}\n')
                await writer.drain()
                lines = [json.loads(await reader.readline())
                         for _ in range(4)]
                writer.close()
                tcp.close()
                await tcp.wait_closed()
                return lines

        ok, bad, missing, stats = asyncio.run(main())
        assert ok["id"] == "req-5" and ok["request"] == 5
        refs = single_shot_digests(design, 4, [5])
        assert ok["digest"] == refs[5]
        assert "bad json" in bad["error"]
        assert "index" in missing["error"]
        assert stats["served"] == 1
