"""Test package."""
