"""Property-test wall around block-convolution tiling correctness.

Three guarantees, over randomized geometry (image size x kernel x
stride x padding x tile size x port counts):

* **Exactness** — a blocked conv layer produces the byte-identical
  output digest of the unblocked full-buffering reference, on both the
  event and the compiled engine (the lockstep engine is covered by the
  three-way equivalence suite).
* **Halo minimality** — the halo width is exactly ``max(0, k - stride)``
  and shrinking it by one row or column (via the split actor's
  test-only ``shave`` hooks, which zero the last halo row/column of
  every tile without changing any rate) corrupts the digest. Rates are
  preserved by construction, so the failure mode is wrong data, never
  a deadlock.
* **Geometry invariants** — the static plan arithmetic (tile count,
  overhang, per-tile window shapes) is self-consistent.
"""

import dataclasses

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import ConvLayerSpec, NetworkDesign, build_network, random_weights
from repro.core.block_transform import design_is_blocked, without_blocking
from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.faults.harness import output_digest
from repro.sst.block import (
    BlockSpec,
    BlockSplitActor,
    plan_blocks,
    reference_block_stream,
    tile_coords,
)
from repro.sst.window import WindowSpec

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def conv_geometries(draw):
    """A random single-conv design plus a tile size for its output."""
    h = draw(st.integers(4, 10))
    w = draw(st.integers(4, 10))
    k = draw(st.integers(1, 4))
    stride = draw(st.integers(1, 3))
    pad = draw(st.integers(0, k - 1)) if k > 1 else 0
    assume(h + 2 * pad >= k and w + 2 * pad >= k)
    window = WindowSpec(k, k, stride=stride, pad=pad)
    oh, ow = window.out_shape(h, w)
    th = draw(st.integers(1, oh))
    tw = draw(st.integers(1, ow))
    in_fm = draw(st.sampled_from([1, 2]))
    out_fm = draw(st.sampled_from([1, 2, 4]))
    in_ports = draw(st.sampled_from([d for d in (1, 2) if in_fm % d == 0]))
    out_ports = draw(st.sampled_from([d for d in (1, 2) if out_fm % d == 0]))
    spec = ConvLayerSpec(
        name="c0", in_fm=in_fm, out_fm=out_fm, kh=k, kw=k, stride=stride,
        pad=pad, in_ports=in_ports, out_ports=out_ports,
        activation=draw(st.sampled_from([None, "relu"])),
        block=BlockSpec(th, tw),
    )
    return NetworkDesign("blocked-prop", (in_fm, h, w), [spec])


def _digest(design, batch, scheduler, shave=None):
    weights = random_weights(design, seed=7)
    net = build_network(design, weights, batch)
    if shave is not None:
        actor = net.graph.actors["c0.split0"]
        actor.shave_h, actor.shave_w = shave
    net.run(max_cycles=2_000_000, scheduler=scheduler)
    return output_digest(net.sink.received)


class TestBlockedEqualsUnblocked:
    @settings(max_examples=30, **_SETTINGS)
    @given(conv_geometries(), st.integers(0, 10_000))
    def test_digest_matches_reference_on_event_and_compiled(self, design, s):
        rng = np.random.default_rng(s)
        batch = rng.uniform(-1, 1, (2,) + design.input_shape).astype(np.float32)
        reference = _digest(without_blocking(design), batch, "event")
        for scheduler in ("event", "compiled"):
            assert _digest(design, batch, scheduler) == reference

    def test_designs_actually_differ_in_structure(self):
        design = NetworkDesign(
            "blocked-prop", (1, 8, 8),
            [ConvLayerSpec(name="c0", in_fm=1, out_fm=1, kh=3, pad=1,
                           block=BlockSpec(3))],
        )
        assert design_is_blocked(design)
        assert not design_is_blocked(without_blocking(design))


class TestHaloMinimality:
    @settings(max_examples=30, **_SETTINGS)
    @given(conv_geometries(), st.integers(0, 10_000))
    def test_shrinking_any_halo_breaks_the_digest(self, design, s):
        spec = design.specs[0]
        if spec.activation is not None:
            # Halo minimality is a data-path property; an activation
            # like relu can clamp both the clean and the corrupted
            # pre-activation to the same value and mask the shave.
            spec = dataclasses.replace(spec, activation=None)
            design = NetworkDesign(design.name, design.input_shape, [spec])
        _, h, w = design.input_shape
        plan = spec.block_plan(h, w)
        assert plan.halo_h == max(0, spec.kh - spec.stride)
        assert plan.halo_w == max(0, spec.kw - spec.stride)
        # A narrower halo is only observable when halo rows exist, a
        # later tile actually re-reads them (at least two tiles in that
        # dimension), and tile 0's shaved window row/column holds real
        # image data rather than zero padding (ih <= pad + h): zeroing
        # zero-fill is a no-op no matter how wrong the halo is.
        shrink_h = (
            plan.halo_h > 0 and plan.gh >= 2 and plan.ih <= spec.pad + h
        )
        shrink_w = (
            plan.halo_w > 0 and plan.gw >= 2 and plan.iw <= spec.pad + w
        )
        assume(shrink_h or shrink_w)
        rng = np.random.default_rng(s)
        batch = rng.uniform(0.1, 1, (1,) + design.input_shape).astype(
            np.float32
        )
        reference = _digest(design, batch, "event")
        for scheduler in ("event", "compiled"):
            if shrink_h:
                assert _digest(design, batch, scheduler, shave=(1, 0)) \
                    != reference
            if shrink_w:
                assert _digest(design, batch, scheduler, shave=(0, 1)) \
                    != reference


class TestPlanGeometry:
    @settings(max_examples=100, **_SETTINGS)
    @given(conv_geometries())
    def test_plan_invariants(self, design):
        spec = design.specs[0]
        _, h, w = design.input_shape
        plan = spec.block_plan(h, w)
        oh, ow = spec.window.out_shape(h, w)
        # Tiles cover the output exactly once, overhang aside.
        assert plan.gh * plan.th >= oh and (plan.gh - 1) * plan.th < oh
        assert plan.gw * plan.tw >= ow and (plan.gw - 1) * plan.tw < ow
        assert plan.coords == plan.n_tiles * plan.th * plan.tw
        assert plan.overhang_h == plan.gh * plan.th - oh
        assert plan.overhang_w == plan.gw * plan.tw - ow
        # Every tile's window pass reproduces the tile's output shape.
        assert plan.tile_window.out_shape(plan.ih, plan.iw) == (
            plan.th, plan.tw,
        )
        coords = tile_coords(plan)
        assert len(coords) == plan.coords
        real = [c for c in coords if c is not None]
        assert len(real) == oh * ow
        assert sorted(real) == [(y, x) for y in range(oh) for x in range(ow)]

    @settings(max_examples=50, **_SETTINGS)
    @given(conv_geometries(), st.integers(0, 10_000))
    def test_split_actor_emits_the_reference_stream(self, design, s):
        spec = design.specs[0]
        _, h, w = design.input_shape
        plan = spec.block_plan(h, w)
        rng = np.random.default_rng(s)
        image = rng.uniform(-1, 1, (h, w)).astype(np.float32)
        g = DataflowGraph("split-ref", default_capacity=4)
        src = g.add_actor(ArraySource("src", image.reshape(-1).tolist()))
        split = g.add_actor(BlockSplitActor("split", plan))
        snk = g.add_actor(ListSink("snk", count=plan.in_words))
        g.connect(src, "out", split, "in")
        g.connect(split, "out", snk, "in")
        g.build_simulator().run(max_cycles=100_000)
        np.testing.assert_array_equal(
            np.asarray(snk.received, dtype=np.float32),
            np.asarray(reference_block_stream(image, plan), dtype=np.float32),
        )
