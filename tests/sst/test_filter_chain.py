"""Unit + property tests for the literal SST filter chain.

The load-bearing claim: the actor-per-filter chain with full-buffering
FIFO depths is functionally identical to the behavioral line buffer and
to the golden reference — i.e. the SST memory system really implements a
sliding window with minimal storage.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError
from repro.sst import (
    WindowSpec,
    build_filter_chain,
    fifo_depths,
    reference_windows,
    tap_offsets,
)


def run_chain(img_group, spec, group=1):
    """img_group: (group, H, W); streams padded image through the chain."""
    h, w = img_group.shape[-2:]
    padded = np.pad(img_group, ((0, 0), (spec.pad, spec.pad), (spec.pad, spec.pad)))
    stream = padded.transpose(1, 2, 0).ravel().astype(np.float32)
    g = DataflowGraph("t")
    head, asm = build_filter_chain(g, "ch", spec, h, w, group=group)
    src = g.add_actor(ArraySource("src", stream))
    count = spec.num_windows(h, w) * group
    snk = g.add_actor(ListSink("snk", count=count))
    g.connect(src, "out", head, "in", capacity=4)
    g.connect(asm, "out", snk, "in", capacity=4)
    g.build_simulator().run()
    return snk.received


def expected(img_group, spec, group):
    per_fm = [reference_windows(img_group[g], spec) for g in range(group)]
    out = []
    for i in range(len(per_fm[0])):
        for g in range(group):
            out.append(per_fm[g][i])
    return out


class TestSizing:
    def test_tap_offsets_scale_with_group(self):
        spec = WindowSpec(3, 3)
        assert tap_offsets(spec, 8, group=2) == [o * 2 for o in spec.linear_offsets(8)]

    def test_fifo_depths_sum_to_max_offset(self):
        # Full buffering: total inter-tap FIFO depth equals the window span.
        spec = WindowSpec(3, 3)
        depths = fifo_depths(spec, 10)
        assert sum(depths) == max(spec.linear_offsets(10))

    def test_fifo_depths_with_group(self):
        spec = WindowSpec(2, 2)
        assert sum(fifo_depths(spec, 6, group=3)) == max(tap_offsets(spec, 6, 3))

    def test_row_boundary_depth_is_line_length(self):
        # The FIFO crossing a row boundary holds (w - kw + 1) elements.
        spec = WindowSpec(2, 2)
        depths = fifo_depths(spec, 7)
        assert max(depths) == 7 - 2 + 1


class TestFunctional:
    def test_3x3_matches_reference(self, rng):
        img = rng.standard_normal((1, 6, 7)).astype(np.float32)
        spec = WindowSpec(3, 3)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(run_chain(img, spec), expected(img, spec, 1))
        )

    def test_strided(self, rng):
        img = rng.standard_normal((1, 6, 6)).astype(np.float32)
        spec = WindowSpec(2, 2, stride=2)
        got = run_chain(img, spec)
        exp = expected(img, spec, 1)
        assert len(got) == 9
        assert all(np.array_equal(a, b) for a, b in zip(got, exp))

    def test_padded(self, rng):
        img = rng.standard_normal((1, 5, 5)).astype(np.float32)
        spec = WindowSpec(3, 3, pad=1)
        got = run_chain(img, spec)
        exp = expected(img, spec, 1)
        assert len(got) == 25
        assert all(np.array_equal(a, b) for a, b in zip(got, exp))

    def test_interleaved_group(self, rng):
        img = rng.standard_normal((3, 5, 5)).astype(np.float32)
        spec = WindowSpec(2, 2)
        got = run_chain(img, spec, group=3)
        exp = expected(img, spec, 3)
        assert all(np.array_equal(a, b) for a, b in zip(got, exp))

    @settings(max_examples=15, deadline=None)
    @given(
        kh=st.integers(1, 3), kw=st.integers(1, 3), stride=st.integers(1, 2),
        h=st.integers(4, 6), w=st.integers(4, 6), group=st.integers(1, 2),
        seed=st.integers(0, 2**16),
    )
    def test_property_chain_equals_reference(self, kh, kw, stride, h, w, group, seed):
        spec = WindowSpec(kh, kw, stride)
        img = (
            np.random.default_rng(seed).standard_normal((group, h, w)).astype(np.float32)
        )
        got = run_chain(img, spec, group=group)
        exp = expected(img, spec, group)
        assert len(got) == len(exp)
        assert all(np.array_equal(a, b) for a, b in zip(got, exp))


class TestTapFilterValidation:
    def test_negative_skip_rejected(self):
        from repro.sst.filter_chain import TapFilter

        with pytest.raises(ConfigurationError):
            TapFilter("f", skip=-1, beats_per_image=10, steps=5, images=1, has_downstream=False)

    def test_overlong_tap_window_rejected(self):
        from repro.sst.filter_chain import TapFilter

        with pytest.raises(ConfigurationError):
            TapFilter("f", skip=8, beats_per_image=10, steps=5, images=1, has_downstream=False)
