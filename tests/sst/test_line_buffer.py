"""Unit tests for the behavioral sliding-window actor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError
from repro.sst import SlidingWindowActor, WindowSpec, completion_map, reference_windows


def stream_windows(images, spec, group=1):
    """Run images (list of (group, H, W) arrays) through the actor."""
    n_img = len(images)
    h, w = images[0].shape[-2:]
    interleaved = np.concatenate(
        [img.transpose(1, 2, 0).ravel() for img in images]
    ).astype(np.float32)
    g = DataflowGraph("t")
    src = g.add_actor(ArraySource("src", interleaved))
    win = g.add_actor(SlidingWindowActor("win", spec, h, w, group=group, images=n_img))
    count = win.windows_per_image * n_img
    snk = g.add_actor(ListSink("snk", count=count))
    g.connect(src, "out", win, "in", capacity=4)
    g.connect(win, "out", snk, "in", capacity=4)
    g.build_simulator().run()
    return snk


def expected_windows(images, spec, group=1):
    out = []
    for img in images:
        per_fm = [reference_windows(img[g], spec) for g in range(group)]
        n = len(per_fm[0])
        for i in range(n):
            for g in range(group):
                out.append(per_fm[g][i])
    return out


class TestValidation:
    def test_group_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowActor("w", WindowSpec(3, 3), 8, 8, group=0)

    def test_images_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowActor("w", WindowSpec(3, 3), 8, 8, images=0)

    def test_windows_per_image(self):
        a = SlidingWindowActor("w", WindowSpec(3, 3), 8, 8, group=2)
        assert a.windows_per_image == 6 * 6 * 2


class TestCompletionMap:
    def test_valid_conv_completions(self):
        done = completion_map(WindowSpec(3, 3), 5, 5)
        # Window (0,0) completes when pixel (2,2) arrives.
        assert (0, 0) in done[(2, 2)]

    def test_each_window_completes_once(self):
        spec = WindowSpec(3, 3, stride=2)
        done = completion_map(spec, 9, 9)
        all_coords = [c for lst in done.values() for c in lst]
        assert len(all_coords) == len(set(all_coords)) == spec.num_windows(9, 9)

    def test_padding_completions_at_edges(self):
        # With padding, the last column of windows completes at the last
        # real column.
        done = completion_map(WindowSpec(3, 3, pad=1), 4, 4)
        assert any((oy, ox) == (0, 3) for (oy, ox) in done[(1, 3)])


class TestStreaming:
    def test_simple_3x3(self, rng):
        img = rng.standard_normal((1, 5, 6)).astype(np.float32)
        snk = stream_windows([img], WindowSpec(3, 3))
        exp = expected_windows([img], WindowSpec(3, 3))
        assert all(np.array_equal(a, b) for a, b in zip(snk.received, exp))

    def test_strided_2x2(self, rng):
        img = rng.standard_normal((1, 6, 6)).astype(np.float32)
        spec = WindowSpec(2, 2, stride=2)
        snk = stream_windows([img], spec)
        exp = expected_windows([img], spec)
        assert all(np.array_equal(a, b) for a, b in zip(snk.received, exp))

    def test_padded(self, rng):
        img = rng.standard_normal((1, 5, 5)).astype(np.float32)
        spec = WindowSpec(3, 3, pad=1)
        snk = stream_windows([img], spec)
        exp = expected_windows([img], spec)
        assert len(snk.received) == 25
        assert all(np.array_equal(a, b) for a, b in zip(snk.received, exp))

    def test_two_fm_interleaved(self, rng):
        img = rng.standard_normal((2, 5, 5)).astype(np.float32)
        spec = WindowSpec(3, 3)
        snk = stream_windows([img], spec, group=2)
        exp = expected_windows([img], spec, group=2)
        assert all(np.array_equal(a, b) for a, b in zip(snk.received, exp))

    def test_multiple_images_back_to_back(self, rng):
        imgs = [rng.standard_normal((1, 4, 4)).astype(np.float32) for _ in range(3)]
        spec = WindowSpec(2, 2)
        snk = stream_windows(imgs, spec)
        exp = expected_windows(imgs, spec)
        assert all(np.array_equal(a, b) for a, b in zip(snk.received, exp))

    def test_window_not_emitted_before_last_pixel(self, rng):
        # Timing: the first 3x3 window needs 2 rows + 3 pixels = at least
        # 2*W+3 input cycles before it can appear.
        img = rng.standard_normal((1, 5, 5)).astype(np.float32)
        snk = stream_windows([img], WindowSpec(3, 3))
        assert snk.timestamps[0] >= 2 * 5 + 3

    @settings(max_examples=25, deadline=None)
    @given(
        kh=st.integers(1, 3), kw=st.integers(1, 3),
        stride=st.integers(1, 2), pad=st.integers(0, 1),
        h=st.integers(4, 7), w=st.integers(4, 7),
        group=st.integers(1, 2), seed=st.integers(0, 2**16),
    )
    def test_property_matches_reference(self, kh, kw, stride, pad, h, w, group, seed):
        if pad >= kh or pad >= kw:
            return
        spec = WindowSpec(kh, kw, stride, pad)
        img = (
            np.random.default_rng(seed)
            .standard_normal((group, h, w))
            .astype(np.float32)
        )
        snk = stream_windows([img], spec, group=group)
        exp = expected_windows([img], spec, group=group)
        assert len(snk.received) == len(exp)
        assert all(np.array_equal(a, b) for a, b in zip(snk.received, exp))


class TestReferenceWindows:
    def test_requires_2d(self):
        with pytest.raises(ConfigurationError):
            reference_windows(np.zeros((2, 3, 3)), WindowSpec(2, 2))

    def test_count(self):
        wins = reference_windows(np.zeros((6, 6)), WindowSpec(3, 3))
        assert len(wins) == 16
