"""Unit tests for the PadInserter actor."""

import numpy as np
import pytest

from repro.dataflow import ArraySource, DataflowGraph, ListSink
from repro.errors import ConfigurationError
from repro.sst import PadInserter


def run_padder(images, pad, group=1):
    """images: (N, group, H, W); returns padded streams per image."""
    n, g_, h, w = images.shape
    stream = np.concatenate(
        [img.transpose(1, 2, 0).ravel() for img in images]
    ).astype(np.float32)
    g = DataflowGraph("t", default_capacity=4)
    src = g.add_actor(ArraySource("src", stream))
    padder = g.add_actor(PadInserter("pad", h, w, pad, group=g_, images=n))
    hp, wp = h + 2 * pad, w + 2 * pad
    snk = g.add_actor(ListSink("snk", count=n * hp * wp * g_))
    g.connect(src, "out", padder, "in")
    g.connect(padder, "out", snk, "in")
    g.build_simulator().run()
    out = np.asarray(snk.received, dtype=np.float32)
    return out.reshape(n, hp, wp, g_).transpose(0, 3, 1, 2)


class TestPadInserter:
    def test_matches_np_pad(self, rng):
        imgs = rng.standard_normal((1, 1, 4, 5)).astype(np.float32)
        got = run_padder(imgs, pad=1)
        exp = np.pad(imgs, ((0, 0), (0, 0), (1, 1), (1, 1)))
        assert np.array_equal(got, exp)

    def test_pad_two(self, rng):
        imgs = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        got = run_padder(imgs, pad=2)
        exp = np.pad(imgs, ((0, 0), (0, 0), (2, 2), (2, 2)))
        assert np.array_equal(got, exp)

    def test_zero_pad_is_identity(self, rng):
        imgs = rng.standard_normal((1, 1, 3, 4)).astype(np.float32)
        got = run_padder(imgs, pad=0)
        assert np.array_equal(got, imgs)

    def test_interleaved_groups(self, rng):
        imgs = rng.standard_normal((1, 3, 3, 3)).astype(np.float32)
        got = run_padder(imgs, pad=1, group=3)
        exp = np.pad(imgs, ((0, 0), (0, 0), (1, 1), (1, 1)))
        assert np.array_equal(got, exp)

    def test_multiple_images(self, rng):
        imgs = rng.standard_normal((3, 1, 3, 3)).astype(np.float32)
        got = run_padder(imgs, pad=1)
        exp = np.pad(imgs, ((0, 0), (0, 0), (1, 1), (1, 1)))
        assert np.array_equal(got, exp)

    def test_negative_pad_rejected(self):
        with pytest.raises(ConfigurationError):
            PadInserter("p", 4, 4, -1)
