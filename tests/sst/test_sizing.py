"""Unit tests for SST buffer sizing."""

import pytest

from repro.errors import ConfigurationError
from repro.sst import WindowSpec, bandwidth_memory_tradeoff, chain_words, layer_buffer_budget


class TestChainWords:
    def test_basic_line_buffer(self):
        # 5x5 over width 16: 4 lines + 5 pixels.
        assert chain_words(WindowSpec(5, 5), 16) == 4 * 16 + 5

    def test_group_multiplies(self):
        assert chain_words(WindowSpec(3, 3), 10, group=4) == (2 * 10 + 3) * 4

    def test_padding_widens_lines(self):
        assert chain_words(WindowSpec(3, 3, pad=1), 10) == 2 * 12 + 3


class TestLayerBudget:
    def test_single_port(self):
        b = layer_buffer_budget(WindowSpec(5, 5), 16, in_fm=1, in_ports=1)
        assert b.fifo_words == 69
        assert b.window_registers == 25
        assert b.chains == 1
        assert b.total_words == 94

    def test_multi_port_splits_fms(self):
        full = layer_buffer_budget(WindowSpec(3, 3), 12, in_fm=6, in_ports=1)
        split = layer_buffer_budget(WindowSpec(3, 3), 12, in_fm=6, in_ports=6)
        # Same total FIFO words (full buffering), more window registers.
        assert full.fifo_words == split.fifo_words
        assert split.window_registers == 6 * full.window_registers

    def test_ports_must_divide(self):
        with pytest.raises(ConfigurationError):
            layer_buffer_budget(WindowSpec(3, 3), 12, in_fm=6, in_ports=4)

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            layer_buffer_budget(WindowSpec(3, 3), 12, in_fm=6, in_ports=0)


class TestTradeoff:
    def test_bandwidth_scales_with_replicas(self):
        rows = bandwidth_memory_tradeoff(WindowSpec(3, 3), 12, 6, [1, 2, 3, 6])
        assert [r["relative_bandwidth"] for r in rows] == [1, 2, 3, 6]

    def test_fifo_words_constant_registers_grow(self):
        rows = bandwidth_memory_tradeoff(WindowSpec(3, 3), 12, 6, [1, 6])
        assert rows[0]["fifo_words"] == rows[1]["fifo_words"]
        assert rows[1]["window_registers"] > rows[0]["window_registers"]
