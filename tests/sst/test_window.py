"""Unit tests for window geometry arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.sst import WindowSpec


class TestValidation:
    def test_zero_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(0, 3)

    def test_zero_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(3, 3, stride=0)

    def test_negative_pad_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(3, 3, pad=-1)

    def test_pad_must_be_smaller_than_kernel(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(3, 3, pad=3)


class TestShapes:
    def test_valid_conv_shape(self):
        assert WindowSpec(5, 5).out_shape(16, 16) == (12, 12)

    def test_strided_pool_shape(self):
        assert WindowSpec(2, 2, stride=2).out_shape(12, 12) == (6, 6)

    def test_same_padding_shape(self):
        assert WindowSpec(3, 3, pad=1).out_shape(10, 10) == (10, 10)

    def test_rectangular_kernel(self):
        assert WindowSpec(1, 3).out_shape(4, 8) == (4, 6)

    def test_too_small_input_raises(self):
        with pytest.raises(ShapeError):
            WindowSpec(5, 5).out_shape(3, 3)

    def test_num_windows(self):
        assert WindowSpec(5, 5).num_windows(16, 16) == 144

    def test_padded_shape(self):
        assert WindowSpec(3, 3, pad=2).padded_shape(5, 5) == (9, 9)

    @given(
        kh=st.integers(1, 5), kw=st.integers(1, 5),
        stride=st.integers(1, 3), h=st.integers(5, 30), w=st.integers(5, 30),
    )
    def test_output_fits_exactly(self, kh, kw, stride, h, w):
        spec = WindowSpec(kh, kw, stride)
        oh, ow = spec.out_shape(h, w)
        # The last window must fit inside the (unpadded) image.
        assert (oh - 1) * stride + kh <= h
        assert (ow - 1) * stride + kw <= w
        # And one more step would overflow.
        assert oh * stride + kh > h
        assert ow * stride + kw > w


class TestOffsets:
    def test_linear_offsets_3x3(self):
        assert WindowSpec(3, 3).linear_offsets(10) == [
            0, 1, 2, 10, 11, 12, 20, 21, 22,
        ]

    def test_offsets_strictly_increasing(self):
        offs = WindowSpec(4, 2).linear_offsets(9)
        assert offs == sorted(set(offs))

    def test_footprint_is_line_buffer_size(self):
        # (kh-1) rows + kw pixels.
        assert WindowSpec(3, 3).footprint(10) == 2 * 10 + 3

    def test_footprint_1x1(self):
        assert WindowSpec(1, 1).footprint(10) == 1

    def test_too_narrow_raises(self):
        with pytest.raises(ShapeError):
            WindowSpec(3, 5).linear_offsets(4)

    def test_describe(self):
        assert WindowSpec(5, 5).describe() == "5x5/s1"
        assert WindowSpec(2, 2, stride=2).describe() == "2x2/s2"
        assert WindowSpec(3, 3, pad=1).describe() == "3x3/s1/p1"
