"""Shared hypothesis strategies for repository-wide property tests."""

from hypothesis import strategies as st

from repro.core import ConvLayerSpec, FCLayerSpec, NetworkDesign, PoolLayerSpec
from repro.core.scaling import divisors


@st.composite
def small_designs(draw):
    """A random valid 2-4 layer design over a small input."""
    c = draw(st.sampled_from([1, 2, 3]))
    h = draw(st.integers(6, 9))
    w = draw(st.integers(6, 9))
    specs = []
    shape = (c, h, w)
    prev_out_ports = 1
    n_feature_layers = draw(st.integers(1, 2))
    for i in range(n_feature_layers):
        cc, hh, ww = shape
        kind = draw(st.sampled_from(["conv", "pool"])) if i > 0 else "conv"
        if kind == "conv":
            k = draw(st.sampled_from([1, 2, 3]))
            stride = draw(st.sampled_from([1, 2]))
            pad = draw(st.sampled_from([0, 1])) if k > 1 else 0
            if hh + 2 * pad < k or ww + 2 * pad < k:
                k = 1
                pad = 0
            out_fm = draw(st.sampled_from([1, 2, 4]))
            # Ports: divisors compatible with the previous stage.
            in_opts = [d for d in divisors(cc)
                       if max(d, prev_out_ports) % min(d, prev_out_ports) == 0]
            in_ports = draw(st.sampled_from(in_opts))
            out_ports = draw(st.sampled_from(divisors(out_fm)))
            act = draw(st.sampled_from([None, "tanh", "relu"]))
            spec = ConvLayerSpec(
                name=f"conv{i}", in_fm=cc, out_fm=out_fm, kh=k, kw=k,
                stride=stride, pad=pad, in_ports=in_ports,
                out_ports=out_ports, activation=act,
            )
        else:
            if hh < 2 or ww < 2:
                continue
            in_opts = [d for d in divisors(cc)
                       if max(d, prev_out_ports) % min(d, prev_out_ports) == 0]
            ports = draw(st.sampled_from(in_opts))
            spec = PoolLayerSpec(
                name=f"pool{i}", in_fm=cc, out_fm=cc, kh=2, kw=2, stride=2,
                in_ports=ports, out_ports=ports,
                mode=draw(st.sampled_from(["max", "mean"])),
            )
        shape = spec.out_shape(shape)
        prev_out_ports = spec.out_ports
        specs.append(spec)
    if draw(st.booleans()):
        flat = shape[0] * shape[1] * shape[2]
        out = draw(st.sampled_from([2, 3, 5]))
        specs.append(
            FCLayerSpec(
                name="fc", in_fm=flat, out_fm=out,
                acc_lanes=draw(st.sampled_from([1, 4, 12])),
                activation=draw(st.sampled_from([None, "tanh"])),
            )
        )
    return NetworkDesign("random", (c, h, w), specs)
