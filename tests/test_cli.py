"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import design_to_json, usps_design


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestCommands:
    def test_block_design(self, capsys):
        code, out, _ = run_cli(capsys, "block-design", "usps")
        assert code == 0
        assert "[conv1]" in out and "II=" in out

    def test_report(self, capsys):
        code, out, _ = run_cli(capsys, "report", "tiny")
        assert code == 0
        assert "per-core synthesis estimates" in out

    def test_perf(self, capsys):
        code, out, _ = run_cli(capsys, "perf", "usps")
        assert code == 0
        assert "256 cycles" in out and "bottleneck" in out

    def test_resources(self, capsys):
        code, out, _ = run_cli(capsys, "resources", "cifar10")
        assert code == 0
        assert "DSP" in out and "utilization %" in out

    def test_sweep_custom_batches(self, capsys):
        code, out, _ = run_cli(capsys, "sweep", "usps", "--batches", "1", "4")
        assert code == 0
        lines = [l for l in out.splitlines() if l and l[0].isdigit()]
        assert len(lines) == 2

    def test_dse(self, capsys):
        code, out, _ = run_cli(capsys, "dse", "usps")
        assert code == 0
        assert "best interval found" in out

    def test_simulate_verifies(self, capsys):
        code, out, _ = run_cli(capsys, "simulate", "tiny", "--images", "2")
        assert code == 0
        assert "verified" in out and "True" in out

    def test_design_json_input(self, capsys, tmp_path):
        path = tmp_path / "design.json"
        path.write_text(design_to_json(usps_design()))
        code, out, _ = run_cli(capsys, "perf", str(path))
        assert code == 0
        assert "usps-tc1" in out

    def test_unknown_design_fails_cleanly(self, capsys):
        code, out, err = run_cli(capsys, "perf", "resnet50")
        assert code == 1
        assert "unknown design" in err

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_flow_command(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "flow", "tiny", "--epochs", "2", "--out", str(tmp_path / "f")
        )
        assert code == 0
        assert "flow verdict" in out and "PASSED" in out
        assert (tmp_path / "f" / "design.json").exists()

    def test_flow_unknown_preset(self, capsys):
        code, _, err = run_cli(capsys, "flow", "vgg")
        assert code == 1 and "unknown flow preset" in err

    def test_perf_breakdown(self, capsys):
        code, out, _ = run_cli(capsys, "perf", "cifar10", "--breakdown")
        assert code == 0
        assert "per-stage breakdown" in out
        assert "conv1" in out and "dma_in" in out and "<-" in out

    def test_zoo_presets_available(self, capsys):
        code, out, _ = run_cli(capsys, "perf", "alexnet")
        assert code == 0 and "conv1" in out
        code, out, _ = run_cli(capsys, "resources", "vgg16")
        assert code == 0 and "BRAM" in out


class TestPilotAlias:
    def test_pilot_flag_on_promoted_design_notes_deprecation(self, capsys):
        # `--pilot` on a promoted (blocked, full-size) preset still works
        # but is a deprecated alias for the explicit -pilot preset: it
        # must say so on stderr and visibly profile the downscale.
        code, out, err = run_cli(
            capsys, "profile", "--design", "alexnet", "--pilot",
            "--scheduler", "compiled",
        )
        assert code == 0
        assert "deprecated" in err and "alexnet-pilot" in err

    def test_pilot_preset_spelling_is_quiet(self, capsys):
        code, _, err = run_cli(
            capsys, "profile", "--design", "alexnet-pilot",
            "--scheduler", "compiled",
        )
        assert code == 0
        assert "deprecated" not in err

    def test_alias_and_full_size_reports_are_distinct(self, capsys, tmp_path):
        # The aliased run is the downscale, not a silent duplicate of
        # the full-size report: the two JSON artifacts must disagree on
        # the design's full-buffering footprint.
        alias_json = tmp_path / "alias.json"
        full_json = tmp_path / "full.json"
        code, _, _ = run_cli(
            capsys, "shrink", "--design", "alexnet", "--pilot",
            "--no-validate", "--json", str(alias_json),
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys, "shrink", "--design", "alexnet",
            "--no-validate", "--json", str(full_json),
        )
        assert code == 0
        alias = json.loads(alias_json.read_text())
        full = json.loads(full_json.read_text())
        assert alias["pilot"] and not full["pilot"]
        assert alias["words"]["full"] != full["words"]["full"]


class TestCheck:
    def test_check_preset_passes(self, capsys):
        code, out, _ = run_cli(capsys, "check", "usps")
        assert code == 0
        assert "PASS:" in out and "0 error(s)" in out

    def test_check_bad_design_fails_with_rule_id(self, capsys, tmp_path):
        from tests.analysis.bad_designs import mismatched_ports_dict

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(mismatched_ports_dict()))
        code, out, _ = run_cli(capsys, "check", str(path))
        assert code == 1
        assert "ADAPTER.LEGAL" in out and "FAIL:" in out

    def test_check_json_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "report.json"
        code, _, _ = run_cli(capsys, "check", "tiny", "--json", str(artifact))
        assert code == 0
        d = json.loads(artifact.read_text())
        assert d["design"] == "tiny" and d["ok"] is True
        assert d["rules_run"]

    def test_check_list_rules(self, capsys):
        code, out, _ = run_cli(capsys, "check", "--list-rules")
        assert code == 0
        assert "RATE.BALANCE" in out and "BUFFER.SKEW" in out

    def test_check_requires_design_or_list(self, capsys):
        code, _, err = run_cli(capsys, "check")
        assert code == 1 and "required" in err

    def test_check_no_elaborate_skips_graph_rules(self, capsys, tmp_path):
        artifact = tmp_path / "r.json"
        code, _, _ = run_cli(capsys, "check", "usps", "--no-elaborate",
                             "--json", str(artifact))
        assert code == 0
        d = json.loads(artifact.read_text())
        assert "BUFFER.SKEW" not in d["rules_run"]

    def test_check_not_json_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{not json")
        code, _, err = run_cli(capsys, "check", str(path))
        assert code == 1 and "not valid JSON" in err
