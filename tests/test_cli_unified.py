"""Unified CLI surface: shared --design/--json/--seed flags and `profile`."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestUnifiedFlags:
    def test_design_flag_on_check(self, capsys):
        code, out, err = run_cli(capsys, "check", "--design", "tiny")
        assert code == 0
        assert "repro check: tiny" in out
        assert "deprecated" not in err

    def test_positional_design_deprecated_but_works(self, capsys):
        code, out, err = run_cli(capsys, "check", "tiny")
        assert code == 0
        assert "repro check: tiny" in out
        assert "deprecated" in err

    def test_conflicting_spellings_rejected(self, capsys):
        code, _, err = run_cli(capsys, "check", "tiny", "--design", "usps")
        assert code == 1
        assert "conflicts" in err

    def test_flow_requires_design(self, capsys):
        code, _, err = run_cli(capsys, "flow")
        assert code == 1
        assert "design is required" in err

    def test_faultsim_design_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "faultsim", "--design", "tiny", "--images", "1"
        )
        assert code == 0
        assert "fault injection: tiny" in out

    def test_faultsim_json_envelope(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code, _, _ = run_cli(
            capsys, "faultsim", "--design", "tiny", "--images", "1",
            "--json", str(path),
        )
        assert code == 0
        d = json.loads(path.read_text())
        assert d["schema_version"] == 1
        assert d["kind"] == "faultsim"


class TestProfileCommand:
    def test_profile_text(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "--design", "tiny")
        assert code == 0
        assert "profile: tiny" in out
        assert "Eq.4" in out
        assert "bottleneck" in out

    def test_profile_json_and_trace(self, capsys, tmp_path):
        jpath = tmp_path / "profile.json"
        tpath = tmp_path / "trace.json"
        code, _, _ = run_cli(
            capsys, "profile", "--design", "tiny", "--images", "2",
            "--json", str(jpath), "--chrome-trace", str(tpath),
        )
        assert code == 0
        d = json.loads(jpath.read_text())
        assert d["kind"] == "profile" and d["cores"]
        trace = json.loads(tpath.read_text())
        assert trace["traceEvents"]

    def test_profile_lockstep_scheduler(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "--design", "tiny", "--scheduler", "lockstep",
            "--images", "2",
        )
        assert code == 0
        assert "lockstep" in out


class TestCompiledScheduler:
    """`--scheduler compiled` is accepted uniformly across subcommands."""

    def test_profile_compiled_scheduler(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "--design", "tiny", "--scheduler", "compiled",
            "--images", "2",
        )
        assert code == 0
        assert "compiled" in out
        assert "bottleneck" in out

    def test_flow_compiled_scheduler(self, capsys):
        code, out, _ = run_cli(
            capsys, "flow", "--design", "tiny", "--epochs", "1",
            "--scheduler", "compiled",
        )
        assert code == 0
        assert "verification" in out

    def test_faultsim_rejects_compiled_cleanly(self, capsys):
        # A clear one-line error, not a traceback: fault injection needs
        # an interpreted engine.
        code, _, err = run_cli(
            capsys, "faultsim", "--design", "tiny", "--images", "1",
            "--scheduler", "compiled",
        )
        assert code == 1
        assert "error:" in err
        assert "interpreted engine" in err
        assert "Traceback" not in err


class TestShrinkCommand:
    def test_shrink_text_and_exit(self, capsys):
        code, out, _ = run_cli(capsys, "shrink", "--design", "tiny")
        assert code == 0
        assert "depth shrink: tiny" in out
        assert "verdict" in out and "ok" in out
        assert "tight probes" in out

    def test_shrink_json_envelope_and_apply(self, capsys, tmp_path):
        json_path = tmp_path / "shrink.json"
        plan_path = tmp_path / "plan.json"
        code, _, _ = run_cli(
            capsys, "shrink", "--design", "tiny",
            "--json", str(json_path), "--apply", str(plan_path),
        )
        assert code == 0
        d = json.loads(json_path.read_text())
        assert d["schema_version"] == 1 and d["kind"] == "shrink"
        assert d["ok"] is True
        assert d["words"]["saved_pct"] >= 30.0
        from repro.analysis import load_depth_plan

        plan = load_depth_plan(str(plan_path))
        assert plan.design_name == "tiny"
        assert plan.tight_channels()

    def test_shrink_no_validate_skips_runs(self, capsys):
        code, out, _ = run_cli(
            capsys, "shrink", "--design", "tiny", "--no-validate",
        )
        assert code == 0
        assert "certified run" not in out

    def test_shrink_probe_limit(self, capsys):
        code, out, _ = run_cli(
            capsys, "shrink", "--design", "tiny", "--probe-limit", "1",
        )
        assert code == 0
        assert "unprobed" in out

    def test_shrink_bisect_table(self, capsys):
        code, out, _ = run_cli(
            capsys, "shrink", "--design", "tiny", "--bisect",
        )
        assert code == 0
        assert "empirical bisect" in out
        assert "tight" in out

    def test_shrink_requires_design(self, capsys):
        code, _, err = run_cli(capsys, "shrink")
        assert code == 1
        assert "design is required" in err


class TestShardCommand:
    def test_shard_text_verdict(self, capsys):
        code, out, err = run_cli(
            capsys, "shard", "--design", "tiny",
            "--devices", "1", "2", "--images", "2",
        )
        assert code == 0
        assert "shard tiny" in out
        assert "digest match" in out
        assert "deprecated" not in err

    def test_shard_positional_design_deprecated(self, capsys):
        code, out, err = run_cli(
            capsys, "shard", "tiny", "--devices", "1", "--images", "1",
        )
        assert code == 0
        assert "deprecated" in err

    def test_shard_json_envelope(self, capsys, tmp_path):
        path = tmp_path / "shard.json"
        code, _, _ = run_cli(
            capsys, "shard", "--design", "tiny",
            "--devices", "1", "2", "--images", "2", "--json", str(path),
        )
        assert code == 0
        d = json.loads(path.read_text())
        assert d["schema_version"] == 1
        assert d["kind"] == "shard"
        assert d["ok"] is True

    def test_shard_throttle_campaign(self, capsys):
        code, out, _ = run_cli(
            capsys, "shard", "--design", "tiny",
            "--devices", "2", "--images", "3", "--throttle", "1:3",
        )
        assert code == 0
        assert "throttle p=1 b=3" in out

    def test_shard_bad_throttle_spec(self, capsys):
        code, _, err = run_cli(
            capsys, "shard", "--design", "tiny", "--throttle", "nope",
        )
        assert code == 1
        assert "PERIOD:BURST" in err

    def test_shard_requires_design(self, capsys):
        code, _, err = run_cli(capsys, "shard")
        assert code == 1
        assert "design is required" in err
