"""Unit tests for global configuration objects."""

import pytest

from repro.config import (
    DEFAULT_CLOCK_HZ,
    DMA_BANDWIDTH_BYTES_PER_S,
    DMA_DATAPATH_BITS,
    FADD_LATENCY_CYCLES,
    PAPER_CLOCK,
    ClockDomain,
)


class TestPaperConstants:
    def test_clock_is_100mhz(self):
        assert DEFAULT_CLOCK_HZ == 100e6
        assert PAPER_CLOCK.frequency_hz == 100e6

    def test_dma_figures_match_section5(self):
        assert DMA_DATAPATH_BITS == 32
        assert DMA_BANDWIDTH_BYTES_PER_S == 400e6

    def test_fadd_latency_is_papers_11(self):
        assert FADD_LATENCY_CYCLES == 11


class TestClockDomain:
    def test_period(self):
        assert ClockDomain(200e6).period_s == pytest.approx(5e-9)

    def test_cycles_to_seconds_roundtrip(self):
        c = ClockDomain(100e6)
        assert c.seconds_to_cycles(c.cycles_to_seconds(1234)) == pytest.approx(1234)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            ClockDomain(0)
        with pytest.raises(ValueError):
            ClockDomain(-1e6)
