"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.ShapeError,
            errors.PortMismatchError,
            errors.GraphError,
            errors.SimulationError,
            errors.DeadlockError,
            errors.ChannelProtocolError,
            errors.ResourceError,
            errors.DatasetError,
            errors.TrainingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_shape_error_is_configuration_error(self):
        assert issubclass(errors.ShapeError, errors.ConfigurationError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)


class TestDeadlockError:
    def test_carries_cycle_and_blocked(self):
        e = errors.DeadlockError(42, {"a": "waiting on b", "b": "waiting on a"})
        assert e.cycle == 42
        assert e.blocked == {"a": "waiting on b", "b": "waiting on a"}

    def test_message_lists_actors(self):
        e = errors.DeadlockError(7, {"x": "full fifo"})
        assert "cycle 7" in str(e) and "x: full fifo" in str(e)

    def test_single_catch_clause_for_library(self):
        try:
            raise errors.DatasetError("nope")
        except errors.ReproError as e:
            assert "nope" in str(e)
